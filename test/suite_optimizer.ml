(* The transformation algorithms: classification, NEST-N-J, Kim's buggy
   NEST-JA (reproducing the paper's wrong answers), NEST-JA2 (reproducing
   the fixes), the §8 extension rewrites, the recursive NEST-G driver, the
   cost model, and the planner. *)

module Value = Relalg.Value
module Row = Relalg.Row
module Relation = Relalg.Relation
module Catalog = Storage.Catalog
module Pager = Storage.Pager
module F = Workload.Fixtures
open Optimizer

let parse = F.parse_analyzed

let fresh_counter () =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "TEMP%d" !n

let ints rel name =
  List.map
    (function Value.Int i -> i | v -> Alcotest.failf "not int: %a" Value.pp v)
    (Relation.column_values rel name)
  |> List.sort compare

(* Run a full pipeline: NEST-G transform, then plan+execute the program. *)
let transform_and_run ?(force = Planner.Auto) catalog text =
  let q = parse catalog text in
  let program = Nest_g.transform ~fresh:(fun () -> Catalog.fresh_temp_name catalog) q in
  let result = Planner.run_program ~force ~verify:true catalog program in
  (program, result)

(* --- Classification ------------------------------------------------------ *)

let classification = Alcotest.testable Classify.pp (fun a b -> a = b)

let classify_text catalog text =
  let q = parse catalog text in
  match Classify.classify_query q with
  | Some c -> c
  | None -> Alcotest.fail "expected a nested query"

let test_classify_paper_examples () =
  let kim = F.kim_catalog () in
  Alcotest.(check classification) "example 1 is N" Classify.Type_n
    (classify_text kim F.example1);
  Alcotest.(check classification) "example 2 is A" Classify.Type_a
    (classify_text kim F.example2);
  Alcotest.(check classification) "example 3 is N" Classify.Type_n
    (classify_text kim F.example3);
  Alcotest.(check classification) "example 4 is J" Classify.Type_j
    (classify_text kim F.example4);
  Alcotest.(check classification) "example 5 is JA" Classify.Type_ja
    (classify_text kim F.example5);
  let ps = F.parts_supply_catalog F.Count_bug in
  Alcotest.(check classification) "Q2 is JA" Classify.Type_ja
    (classify_text ps F.query_q2);
  Alcotest.(check classification) "Q5 is JA" Classify.Type_ja
    (classify_text ps F.query_q5)

let test_classify_flat () =
  let kim = F.kim_catalog () in
  let q = parse kim "SELECT SNO FROM S WHERE STATUS > 20" in
  Alcotest.(check bool) "flat query" true (Classify.classify_query q = None)

(* --- NEST-N-J ------------------------------------------------------------ *)

let test_nest_nj_example1 () =
  let kim = F.kim_catalog () in
  let q = parse kim F.example1 in
  let merged =
    match q.Sql.Ast.where with
    | [ pred ] -> Nest_n_j.merge_predicate q pred
    | _ -> Alcotest.fail "shape"
  in
  Alcotest.(check int) "two FROM tables" 2 (List.length merged.Sql.Ast.from);
  Alcotest.(check bool) "canonical" true (Program.is_canonical merged);
  (* evaluate both forms by nested iteration: same (set) result *)
  let reference = Exec.Nested_iter.run kim q in
  let transformed = Exec.Nested_iter.run kim merged in
  Alcotest.(check bool) "same result" true
    (Relation.equal_set reference transformed)

let test_nest_nj_alias_conflict () =
  let kim = F.kim_catalog () in
  (* Outer and inner both bind SP: the inner binding must be renamed. *)
  let q =
    parse kim
      "SELECT SNO FROM SP WHERE QTY IN (SELECT QTY FROM SP WHERE PNO = 'P2')"
  in
  let merged =
    match q.Sql.Ast.where with
    | [ pred ] -> Nest_n_j.merge_predicate q pred
    | _ -> Alcotest.fail "shape"
  in
  let aliases = List.map Sql.Ast.from_alias merged.Sql.Ast.from in
  Alcotest.(check bool) "aliases distinct" true
    (List.length (List.sort_uniq compare aliases) = List.length aliases);
  let reference = Exec.Nested_iter.run kim q in
  let transformed = Exec.Nested_iter.run kim merged in
  Alcotest.(check bool) "same result" true
    (Relation.equal_set reference transformed)

let test_nest_nj_merge_all () =
  let kim = F.kim_catalog () in
  (* Two sibling nested predicates, both merged in one call. *)
  let q =
    parse kim
      "SELECT SNO FROM SP WHERE PNO IN (SELECT PNO FROM P WHERE WEIGHT > 15)        AND SNO IN (SELECT SNO FROM S WHERE CITY = 'Paris')"
  in
  let merged = Nest_n_j.merge_all q in
  Alcotest.(check bool) "canonical after merge_all" true
    (Program.is_canonical merged);
  Alcotest.(check int) "three FROM tables" 3 (List.length merged.Sql.Ast.from);
  let reference = Exec.Nested_iter.run kim q in
  let transformed = Exec.Nested_iter.run kim merged in
  Alcotest.(check bool) "same result" true
    (Relation.equal_set reference transformed)

let test_nest_nj_rejects_agg () =
  let kim = F.kim_catalog () in
  let q = parse kim F.example2 in
  match q.Sql.Ast.where with
  | [ pred ] ->
      Alcotest.(check bool) "raises" true
        (try
           ignore (Nest_n_j.merge_predicate q pred);
           false
         with Nest_n_j.Not_applicable _ -> true)
  | _ -> Alcotest.fail "shape"

(* --- Kim's NEST-JA: the bugs, reproduced -------------------------------- *)

(* E3: the COUNT bug (§5.1).  On Kiessling's data, nested iteration gives
   {10, 8} but Kim's transformation builds TEMP' = {(3,2), (10,1)} — the
   COUNT can never be 0, so part 8 has no group — and the final join keeps
   only {10}.  We assert both the TEMP' contents the paper prints and the
   divergence of the two results. *)
let test_kim_ja_count_bug () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  let q = parse catalog F.query_q2 in
  let pred = match q.Sql.Ast.where with [ p ] -> p | _ -> Alcotest.fail "shape" in
  let temp, rewritten = Nest_ja.transform q pred ~temp_name:"TEMPP" in
  Planner.materialize_temp catalog temp;
  (* TEMP' as printed in the paper: {(3,2), (10,1)} — no row for 8. *)
  let temp_rel = Catalog.relation catalog "TEMPP" in
  Alcotest.(check (list int)) "TEMP' group keys" [ 3; 10 ]
    (ints temp_rel "PNUM");
  Alcotest.(check (list int)) "TEMP' counts" [ 1; 2 ]
    (ints temp_rel "COUNT_SHIPDATE");
  (* Transformed result: {10} — differs from nested iteration's {10, 8}. *)
  let { Planner.plan; _ } = Planner.lower catalog rewritten in
  let transformed = Exec.Plan.run catalog plan in
  Alcotest.(check (list int)) "buggy transformed result" [ 10 ]
    (ints transformed "PNUM");
  let reference = Exec.Nested_iter.run catalog q in
  Alcotest.(check (list int)) "nested iteration result" [ 8; 10 ]
    (ints reference "PNUM");
  Alcotest.(check bool) "bug: results differ" false
    (Relation.equal_set reference transformed)

(* E4: the non-equality bug (§5.3).  With [<] in the correlation predicate
   Kim's temp groups by the inner PNUM, aggregating the wrong ranges; the
   paper's tables give TEMP5 = {(3,4),(10,1),(9,5)} and final result
   {10, 8} where nested iteration gives {8}. *)
let test_kim_ja_neq_bug () =
  let catalog = F.parts_supply_catalog F.Neq_bug in
  let q = parse catalog F.query_q5 in
  let pred = match q.Sql.Ast.where with [ p ] -> p | _ -> Alcotest.fail "shape" in
  let temp, rewritten = Nest_ja.transform q pred ~temp_name:"TEMP5" in
  Planner.materialize_temp catalog temp;
  let temp_rel = Catalog.relation catalog "TEMP5" in
  Alcotest.(check (list int)) "TEMP5 keys" [ 3; 9; 10 ] (ints temp_rel "PNUM");
  Alcotest.(check (list int)) "TEMP5 maxima" [ 1; 4; 5 ]
    (ints temp_rel "MAX_QUAN");
  let { Planner.plan; _ } = Planner.lower catalog rewritten in
  let transformed = Exec.Plan.run catalog plan in
  Alcotest.(check (list int)) "buggy transformed result" [ 8; 10 ]
    (ints transformed "PNUM");
  let reference = Exec.Nested_iter.run catalog q in
  Alcotest.(check (list int)) "nested iteration result" [ 8 ]
    (ints reference "PNUM")

(* --- NEST-JA2: the fixes -------------------------------------------------- *)

let nest_ja2_run catalog text =
  let q = parse catalog text in
  let pred = match q.Sql.Ast.where with [ p ] -> p | _ -> Alcotest.fail "shape" in
  let { Nest_ja2.temps; rewritten } =
    Nest_ja2.transform q pred ~fresh:(fresh_counter ()) ()
  in
  List.iter (Planner.materialize_temp catalog) temps;
  let { Planner.plan; _ } = Planner.lower catalog rewritten in
  (temps, Exec.Plan.run catalog plan)

let test_ja2_fixes_count_bug () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  let temps, result = nest_ja2_run catalog F.query_q2 in
  Alcotest.(check int) "three temps (TEMP1, TEMP2, TEMP3)" 3 (List.length temps);
  Alcotest.(check (list int)) "fixed result {10, 8}" [ 8; 10 ]
    (ints result "PNUM");
  (* TEMP3 as the paper prints it: {(3,2), (10,1), (8,0)}. *)
  let temp3 = Catalog.relation catalog "TEMP3" in
  Alcotest.(check (list int)) "TEMP3 keys" [ 3; 8; 10 ] (ints temp3 "PNUM");
  Alcotest.(check (list int)) "TEMP3 counts include 0" [ 0; 1; 2 ]
    (ints temp3 "COUNT_SHIPDATE")

let test_ja2_count_star () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  let _, result = nest_ja2_run catalog F.query_q2_count_star in
  Alcotest.(check (list int)) "COUNT(*) result {10, 8}" [ 8; 10 ]
    (ints result "PNUM")

let test_ja2_fixes_neq_bug () =
  let catalog = F.parts_supply_catalog F.Neq_bug in
  let temps, result = nest_ja2_run catalog F.query_q5 in
  (* non-COUNT: two temps only (no TEMP2). *)
  Alcotest.(check int) "two temps" 2 (List.length temps);
  Alcotest.(check (list int)) "fixed result {8}" [ 8 ] (ints result "PNUM");
  (* The paper's TEMP6: SUPPNUM {10, 8} with maxima {4, 4}. *)
  let temp3 = Catalog.relation catalog "TEMP2" in
  Alcotest.(check (list int)) "TEMP6 keys" [ 8; 10 ] (ints temp3 "PNUM");
  (* grouped maxima: PNUM 8 -> 4, PNUM 10 -> 5 (column-sorted view) *)
  Alcotest.(check (list int)) "TEMP6 maxima" [ 4; 5 ] (ints temp3 "MAX_QUAN")

let test_ja2_fixes_duplicates () =
  let catalog = F.parts_supply_catalog F.Duplicates in
  let _, result = nest_ja2_run catalog F.query_q2 in
  Alcotest.(check (list int)) "result {3, 10, 8}" [ 3; 8; 10 ]
    (ints result "PNUM");
  (* TEMP1 is the DISTINCT projection {3, 10, 8}; TEMP3 counts {2, 1, 0}. *)
  let temp1 = Catalog.relation catalog "TEMP1" in
  Alcotest.(check (list int)) "TEMP1 distinct keys" [ 3; 8; 10 ]
    (ints temp1 "PNUM");
  let temp3 = Catalog.relation catalog "TEMP3" in
  Alcotest.(check (list int)) "TEMP3 counts" [ 0; 1; 2 ]
    (ints temp3 "COUNT_SHIPDATE")

let test_ja2_unprojected_variant_still_wrong () =
  (* §5.4's intermediate variant: outer join fixes the COUNT bug but joining
     the raw (unprojected) outer relation inflates counts when PARTS has
     duplicate PNUMs.  On the §5.4 instance the paper's wrong result is {8};
     TEMP3 holds the inflated counts {(3,4), (10,2), (8,0)}. *)
  let catalog = F.parts_supply_catalog F.Duplicates in
  let q = parse catalog F.query_q2 in
  let pred = match q.Sql.Ast.where with [ p ] -> p | _ -> Alcotest.fail "shape" in
  let { Nest_ja2.temps; rewritten } =
    Nest_ja2.transform q pred ~fresh:(fresh_counter ()) ~project_outer:false ()
  in
  List.iter (Planner.materialize_temp catalog) temps;
  let temp3 = Catalog.relation catalog "TEMP3" in
  Alcotest.(check (list int)) "inflated counts" [ 0; 2; 4 ]
    (ints temp3 "COUNT_SHIPDATE");
  let { Planner.plan; _ } = Planner.lower catalog rewritten in
  let transformed = Exec.Plan.run catalog plan in
  Alcotest.(check (list int)) "paper's wrong result {8}" [ 8 ]
    (ints transformed "PNUM");
  let reference = Exec.Nested_iter.run catalog q in
  Alcotest.(check bool) "differs from nested iteration" false
    (Relation.equal_set reference transformed)

let test_ja2_restriction_before_join () =
  (* §5.2 stresses that inner simple predicates apply before the outer
     join: TEMP2 must already be restricted by SHIPDATE < 1-1-80.  Check
     TEMP2 contents. *)
  let catalog = F.parts_supply_catalog F.Count_bug in
  let _ = nest_ja2_run catalog F.query_q2 in
  let temp2 = Catalog.relation catalog "TEMP2" in
  Alcotest.(check (list int)) "TEMP2 restricted rows" [ 3; 3; 10 ]
    (ints temp2 "PNUM")

let test_ja2_outer_simple_predicates_restrict_temp1 () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  let text =
    "SELECT PNUM FROM PARTS WHERE PNUM > 5 AND QOH = (SELECT COUNT(SHIPDATE) \
     FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < '1-1-80')"
  in
  let q = parse catalog text in
  let pred =
    match q.Sql.Ast.where with
    | [ _; p ] -> p
    | _ -> Alcotest.fail "shape"
  in
  let { Nest_ja2.temps; rewritten } =
    Nest_ja2.transform q pred ~fresh:(fresh_counter ()) ()
  in
  List.iter (Planner.materialize_temp catalog) temps;
  let temp1 = Catalog.relation catalog "TEMP1" in
  Alcotest.(check (list int)) "TEMP1 restricted by PNUM > 5" [ 8; 10 ]
    (ints temp1 "PNUM");
  let { Planner.plan; _ } = Planner.lower catalog rewritten in
  let result = Exec.Plan.run catalog plan in
  let reference = Exec.Nested_iter.run catalog q in
  Alcotest.(check bool) "matches reference" true
    (Relation.equal_bag reference result)

let test_ja2_multi_column_correlation () =
  (* Correlation on two columns; reference vs transformed. *)
  let pager = Pager.create ~buffer_pages:8 ~page_bytes:64 () in
  let catalog = Catalog.create pager in
  Catalog.register_relation catalog "O"
    (Relation.of_values ~rel:"O"
       [ ("A", Value.Tint); ("B", Value.Tint); ("T", Value.Tint) ]
       [
         [ Value.Int 1; Value.Int 1; Value.Int 2 ];
         [ Value.Int 1; Value.Int 2; Value.Int 0 ];
         [ Value.Int 2; Value.Int 1; Value.Int 1 ];
       ]);
  Catalog.register_relation catalog "I"
    (Relation.of_values ~rel:"I"
       [ ("A", Value.Tint); ("B", Value.Tint); ("V", Value.Tint) ]
       [
         [ Value.Int 1; Value.Int 1; Value.Int 5 ];
         [ Value.Int 1; Value.Int 1; Value.Int 7 ];
         [ Value.Int 2; Value.Int 1; Value.Int 9 ];
       ]);
  let text =
    "SELECT A FROM O WHERE T = (SELECT COUNT(V) FROM I WHERE I.A = O.A AND \
     I.B = O.B)"
  in
  let _, result = nest_ja2_run catalog text in
  let reference = Exec.Nested_iter.run catalog (parse catalog text) in
  Alcotest.(check bool) "multi-column correlation" true
    (Relation.equal_bag reference result);
  (* both rows with A=1 qualify (counts 2 and 0), plus A=2 *)
  Alcotest.(check (list int)) "values" [ 1; 1; 2 ] (ints result "A")

(* --- §8 extensions -------------------------------------------------------- *)

let test_extension_rewrites_shapes () =
  let kim = F.kim_catalog () in
  let q =
    parse kim
      "SELECT SNAME FROM S WHERE EXISTS (SELECT SNO FROM SP WHERE SP.SNO = \
       S.SNO)"
  in
  let q' = Extensions.rewrite_query q in
  (match q'.Sql.Ast.where with
  | [ Sql.Ast.Cmp_subq (Sql.Ast.Lit (Value.Int 0), Sql.Ast.Lt, sub) ] ->
      Alcotest.(check bool) "COUNT(*) select" true
        (sub.Sql.Ast.select = [ Sql.Ast.Sel_agg Sql.Ast.Count_star ])
  | _ -> Alcotest.fail "EXISTS shape");
  let q =
    parse kim "SELECT PNO FROM P WHERE WEIGHT < ANY (SELECT QTY FROM SP)"
  in
  match (Extensions.rewrite_query q).Sql.Ast.where with
  | [ Sql.Ast.Cmp_subq (_, Sql.Ast.Lt, sub) ] -> (
      match sub.Sql.Ast.select with
      | [ Sql.Ast.Sel_agg (Sql.Ast.Max _) ] -> ()
      | _ -> Alcotest.fail "< ANY should become MAX")
  | _ -> Alcotest.fail "ANY shape"

(* Semantic checks: rewritten queries match the reference evaluator. *)
let test_extension_semantics () =
  let cases =
    [
      "SELECT SNAME FROM S WHERE EXISTS (SELECT SNO FROM SP WHERE SP.SNO = \
       S.SNO)";
      "SELECT SNAME FROM S WHERE NOT EXISTS (SELECT SNO FROM SP WHERE SP.SNO \
       = S.SNO)";
      "SELECT PNO FROM P WHERE WEIGHT < ANY (SELECT QTY FROM SP)";
      "SELECT PNO FROM P WHERE WEIGHT <= ANY (SELECT WEIGHT FROM P X WHERE \
       X.CITY = P.CITY)";
      (* the inner P needs its own alias: the guarded ALL rewrite inlines
         the outer WEIGHT into the subquery and refuses when the alias
         would be captured *)
      "SELECT PNO FROM P WHERE WEIGHT >= ALL (SELECT WEIGHT FROM P X)";
      "SELECT PNO FROM P WHERE WEIGHT > ANY (SELECT WEIGHT FROM P)";
      "SELECT SNO FROM S WHERE SNO = ANY (SELECT SNO FROM SP)";
      "SELECT PNO FROM P WHERE WEIGHT != ANY (SELECT WEIGHT FROM P X)";
    ]
  in
  let kim = F.kim_catalog () in
  (* The Kim fixture relations are NULL-free, so the guarded COUNT forms
     (range ALL, != ANY) are provable and exercised here. *)
  let nullable ~rel:_ _ = false in
  List.iter
    (fun text ->
      let q = parse kim text in
      let q' = Extensions.rewrite_query ~nullable q in
      let a = Exec.Nested_iter.run kim q in
      let b = Exec.Nested_iter.run kim q' in
      if not (Relation.equal_bag a b) then
        Alcotest.failf "extension rewrite changed semantics for %s" text)
    cases

(* Golden forms of the two §8 rules the paper got wrong, safe vs verbatim:
   != ANY must count satisfying items (NOT IN states the wrong condition
   even NULL-free), range ALL must count violating items (MIN/MAX breaks
   on empty or NULL-bearing inners). *)
let test_extension_unsound_rule_golden () =
  let kim = F.kim_catalog () in
  let nullable ~rel:_ _ = false in
  (* one line: the pretty-printer breaks clauses onto separate lines *)
  let pp q =
    String.concat " " (String.split_on_char '\n' (Sql.Pp.query_to_string q))
  in
  let q =
    parse kim "SELECT PNO FROM P WHERE WEIGHT != ANY (SELECT WEIGHT FROM P X)"
  in
  Alcotest.(check string) "safe != ANY: guarded COUNT form"
    "SELECT P.PNO FROM P WHERE 0 < (SELECT COUNT(*) FROM P X WHERE P.WEIGHT \
     != X.WEIGHT)"
    (pp (Extensions.rewrite_query ~nullable q));
  Alcotest.(check string) "paper != ANY: NOT IN, verbatim"
    "SELECT P.PNO FROM P WHERE P.WEIGHT NOT IN (SELECT X.WEIGHT FROM P X)"
    (pp (Extensions.rewrite_query ~paper:true q));
  let q2 =
    parse kim "SELECT PNO FROM P WHERE WEIGHT >= ALL (SELECT WEIGHT FROM P X)"
  in
  Alcotest.(check string) "safe >= ALL: count violations"
    "SELECT P.PNO FROM P WHERE 0 = (SELECT COUNT(*) FROM P X WHERE P.WEIGHT \
     < X.WEIGHT)"
    (pp (Extensions.rewrite_query ~nullable q2));
  Alcotest.(check string) "paper >= ALL: MAX, verbatim"
    "SELECT P.PNO FROM P WHERE P.WEIGHT >= (SELECT MAX(X.WEIGHT) FROM P X)"
    (pp (Extensions.rewrite_query ~paper:true q2));
  (* and the paper's != ANY rule is wrong on this very fixture: with two
     or more distinct weights, every row satisfies != ANY but none
     survives NOT IN *)
  let reference = Exec.Nested_iter.run kim q in
  let safe = Exec.Nested_iter.run kim (Extensions.rewrite_query ~nullable q) in
  let paper =
    Exec.Nested_iter.run kim (Extensions.rewrite_query ~paper:true q)
  in
  Alcotest.(check bool) "safe form agrees" true
    (Relation.equal_bag reference safe);
  Alcotest.(check bool) "paper form diverges here" false
    (Relation.equal_bag reference paper)

let test_extension_eq_all_unsupported () =
  let kim = F.kim_catalog () in
  let q = parse kim "SELECT SNO FROM S WHERE SNO = ALL (SELECT SNO FROM SP)" in
  Alcotest.(check bool) "= ALL unsupported" true
    (try
       ignore (Extensions.rewrite_query q);
       false
     with Extensions.Unsupported _ -> true)

(* --- NEST-G end to end ---------------------------------------------------- *)

let nest_g_matches_reference ?force catalog text =
  let reference = Exec.Nested_iter.run catalog (parse catalog text) in
  let program, result = transform_and_run ?force catalog text in
  Alcotest.(check bool)
    (Printf.sprintf "canonical program for %s" text)
    true
    (Program.is_fully_canonical program);
  if not (Relation.equal_set reference result) then
    Alcotest.failf "transformed result differs for %s:@.ref:@.%a@.got:@.%a"
      text Relation.pp reference Relation.pp result

let test_nest_g_paper_queries () =
  nest_g_matches_reference (F.kim_catalog ()) F.example1;
  nest_g_matches_reference (F.kim_catalog ()) F.example2;
  nest_g_matches_reference (F.kim_catalog ()) F.example3;
  nest_g_matches_reference (F.kim_catalog ()) F.example4;
  nest_g_matches_reference (F.kim_catalog ()) F.example5;
  nest_g_matches_reference (F.parts_supply_catalog F.Count_bug) F.query_q2;
  nest_g_matches_reference (F.parts_supply_catalog F.Neq_bug) F.query_q5;
  nest_g_matches_reference (F.parts_supply_catalog F.Duplicates) F.query_q2;
  nest_g_matches_reference
    (F.parts_supply_catalog F.Count_bug)
    F.query_q2_count_star

let test_nest_g_two_levels () =
  (* N nesting inside J nesting. *)
  let text =
    "SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE SP.ORIGIN = \
     S.CITY AND PNO IN (SELECT PNO FROM P WHERE WEIGHT > 15))"
  in
  nest_g_matches_reference (F.kim_catalog ()) text

let test_nest_g_ja_inside_j () =
  (* JA at depth 2: innermost aggregates over SP correlated with P. *)
  let text =
    "SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE PNO IN \
     (SELECT PNO FROM P WHERE P.WEIGHT = (SELECT MAX(QTY) FROM SP X WHERE \
     X.PNO = P.PNO)))"
  in
  nest_g_matches_reference (F.kim_catalog ()) text

let test_nest_g_trans_aggregate () =
  (* A correlated J-block nested inside the aggregate block: after the inner
     merge, the aggregate block carries the inherited join predicate and is
     transformed by NEST-JA2.  MAX keeps the merge duplicate-insensitive. *)
  let text =
    "SELECT PNUM FROM PARTS WHERE QOH = (SELECT MAX(QUAN) FROM SUPPLY \
     WHERE SUPPLY.PNUM = PARTS.PNUM AND SUPPLY.QUAN IN (SELECT QUAN FROM \
     SUPPLY X WHERE X.PNUM = SUPPLY.PNUM))"
  in
  nest_g_matches_reference (F.parts_supply_catalog F.Count_bug) text

let test_nest_g_safe_vs_paper_semantics () =
  (* A correlated IN below COUNT: Safe mode refuses (NEST-N-J would inflate
     the count); Paper mode reproduces the published — multiplicity-buggy —
     behaviour.  Data is chosen so the bug actually shows: part 3 has two
     shipments with the same QUAN. *)
  let pager = Pager.create ~buffer_pages:8 ~page_bytes:64 () in
  let catalog = Catalog.create pager in
  Catalog.register_relation catalog "PARTS"
    (Relation.of_values ~rel:"PARTS"
       [ ("PNUM", Value.Tint); ("QOH", Value.Tint) ]
       [ [ Value.Int 3; Value.Int 2 ] ]);
  Catalog.register_relation catalog "SUPPLY"
    (Relation.of_values ~rel:"SUPPLY"
       [ ("PNUM", Value.Tint); ("QUAN", Value.Tint) ]
       [ [ Value.Int 3; Value.Int 7 ]; [ Value.Int 3; Value.Int 7 ] ]);
  let text =
    "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(QUAN) FROM SUPPLY \
     WHERE SUPPLY.PNUM = PARTS.PNUM AND QUAN IN (SELECT QUAN FROM SUPPLY X \
     WHERE X.PNUM = SUPPLY.PNUM))"
  in
  let q = parse catalog text in
  (* Safe: refused. *)
  Alcotest.(check bool) "safe mode refuses" true
    (try
       ignore (Nest_g.transform ~fresh:(fresh_counter ()) q);
       false
     with Nest_g.Unsupported _ -> true);
  (* Paper: runs, but the count is inflated (2 matches x 2 members = 4),
     so part 3 (QOH 2) is lost; nested iteration keeps it. *)
  let program =
    Nest_g.transform ~semantics:Nest_g.Paper
      ~fresh:(fun () -> Catalog.fresh_temp_name catalog)
      q
  in
  let transformed = Planner.run_program catalog program in
  let reference = Exec.Nested_iter.run catalog q in
  Alcotest.(check (list int)) "reference keeps part 3" [ 3 ]
    (ints reference "PNUM");
  Alcotest.(check (list int)) "paper mode loses part 3" []
    (ints transformed "PNUM")

let test_nest_g_figure2_tree () =
  (* Figure 2's four-block chain A-B-C-E with the trans-aggregate reference
     in E targeting A's relation: E references PARTS (block A) while B
     aggregates.  Built on the PARTS/SUPPLY data. *)
  let text =
    "SELECT PNUM FROM PARTS WHERE QOH = (SELECT MAX(QUAN) FROM SUPPLY WHERE \
     SUPPLY.QUAN IN (SELECT QUAN FROM SUPPLY C WHERE C.SHIPDATE IN (SELECT \
     SHIPDATE FROM SUPPLY E WHERE E.PNUM = PARTS.PNUM)))"
  in
  nest_g_matches_reference (F.parts_supply_catalog F.Neq_bug) text

let test_nest_g_not_in_unsupported () =
  let kim = F.kim_catalog () in
  let q = parse kim "SELECT SNO FROM S WHERE SNO NOT IN (SELECT SNO FROM SP)" in
  Alcotest.(check bool) "NOT IN unsupported by default" true
    (try
       ignore (Nest_g.transform ~fresh:(fresh_counter ()) q);
       false
     with Nest_g.Unsupported _ -> true)

let test_nest_g_not_in_extension () =
  let catalog = F.kim_catalog () in
  let text = "SELECT SNO FROM S WHERE SNO NOT IN (SELECT SNO FROM SP)" in
  let q = parse catalog text in
  let program =
    (* Kim's relations are NULL-free; the NOT IN guard needs the proof. *)
    Nest_g.transform ~rewrite_not_in:true ~nullable:(fun ~rel:_ _ -> false)
      ~fresh:(fun () -> Catalog.fresh_temp_name catalog)
      q
  in
  let result = Planner.run_program ~verify:true catalog program in
  let reference = Exec.Nested_iter.run catalog q in
  Alcotest.(check bool) "NOT IN via COUNT extension" true
    (Relation.equal_set reference result)

(* Both join methods give the same answers. *)
let test_force_methods_agree () =
  List.iter
    (fun force ->
      nest_g_matches_reference ~force (F.parts_supply_catalog F.Count_bug)
        F.query_q2;
      nest_g_matches_reference ~force (F.parts_supply_catalog F.Neq_bug)
        F.query_q5)
    [ Planner.Force_nl; Planner.Force_merge; Planner.Force_hash ]

(* --- Cost model ----------------------------------------------------------- *)

let test_cost_sect_7_4 () =
  (* Pi=50 Pj=30 Pt2=7 Pt3=10 Pt4=8 Pt=5 B=6 f·Ni=100: nested iteration 3050,
     NEST-JA2 with two merge joins "about 475" (478.6 exactly). *)
  let p =
    {
      Cost.pi = 50.; pj = 30.; pt2 = 7.; pt3 = 10.; pt4 = 8.; pt = 5.;
      b = 6; fi_ni = 100.; nt2 = 100.;
    }
  in
  Alcotest.(check int) "nested iteration 3050" 3050
    (int_of_float (Cost.nested_iteration ~pi:p.pi ~pj:p.pj ~fi_ni:p.fi_ni));
  let total = Cost.ja2_total_merge p in
  Alcotest.(check bool)
    (Printf.sprintf "JA2 total %.1f within [470, 485]" total)
    true
    (total > 470. && total < 485.);
  (* the four §7.4 strategies include the all-merge one, equal to the
     closed-form total *)
  let strategies = Cost.ja2_strategies p in
  Alcotest.(check int) "four strategies" 4 (List.length strategies);
  let all_merge =
    List.find
      (fun s -> s.Cost.temp_method = "merge" && s.Cost.final_method = "merge")
      strategies
  in
  Alcotest.(check bool) "strategy total consistent" true
    (Float.abs (all_merge.Cost.cost -. total) < 1e-6)

let test_cost_figure1_type_n () =
  (* Kim's type-N example: Pi=20, Pj=100, B=6; transformation followed by a
     merge join (sorting only the inner) = 720 page I/Os with ceilinged
     logs, against roughly 10,220 for nested iteration. *)
  let transformed =
    Cost.nest_nj_merge ~rounding:Cost.Ceil ~sort_outer:false ~b:6 ~pi:20.
      ~pj:100. ()
  in
  Alcotest.(check int) "Kim's 720" 720 (int_of_float transformed);
  let nested = Cost.nested_iteration ~pi:20. ~pj:100. ~fi_ni:102. in
  Alcotest.(check int) "Kim's 10220" 10220 (int_of_float nested)

let test_cost_monotonic () =
  (* Sanity: costs grow with relation size and shrink with buffer size. *)
  let c b pj = Cost.nest_nj_merge ~b ~pi:50. ~pj () in
  Alcotest.(check bool) "larger inner costs more" true (c 6 200. > c 6 100.);
  Alcotest.(check bool) "more buffers cost less" true (c 20 200. < c 4 200.);
  Alcotest.(check bool) "sort of one page free" true
    (Cost.sort_cost ~b:6 1. = 0.)

let test_cost_savings_shape () =
  (* The paper's headline: 80-95% savings for correlated queries once the
     inner no longer fits in memory. *)
  let p =
    {
      Cost.pi = 50.; pj = 30.; pt2 = 7.; pt3 = 10.; pt4 = 8.; pt = 5.;
      b = 6; fi_ni = 100.; nt2 = 100.;
    }
  in
  let nested = Cost.nested_iteration ~pi:p.pi ~pj:p.pj ~fi_ni:p.fi_ni in
  let best =
    List.fold_left
      (fun acc s -> Float.min acc s.Cost.cost)
      infinity (Cost.ja2_strategies p)
  in
  let savings = (nested -. best) /. nested in
  Alcotest.(check bool)
    (Printf.sprintf "savings %.0f%% in [0.8, 0.95]" (savings *. 100.))
    true
    (savings > 0.8 && savings < 0.96)

(* --- Planner -------------------------------------------------------------- *)

let test_planner_pushes_restrictions () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  let q =
    parse catalog
      "SELECT PNUM FROM SUPPLY WHERE SHIPDATE < '1-1-80' AND QUAN > 1"
  in
  let { Planner.plan; _ } = Planner.lower catalog q in
  (match plan with
  | Exec.Plan.Project (_, Exec.Plan.Filter (preds, Exec.Plan.Scan "SUPPLY")) ->
      Alcotest.(check int) "both filters pushed" 2 (List.length preds)
  | _ -> Alcotest.fail "expected Project(Filter(Scan))");
  let result = Exec.Plan.run catalog (Planner.lower catalog q).Planner.plan in
  Alcotest.(check (list int)) "rows" [ 3; 3 ] (ints result "PNUM")

let test_planner_join_method_choice () =
  (* Big inner that does not fit in the pool: merge join should win; a tiny
     inner that fits: nested loops should win. *)
  let pager = Pager.create ~buffer_pages:4 ~page_bytes:64 () in
  let catalog = Catalog.create pager in
  let mk n =
    Relation.of_values ~rel:"X"
      [ ("K", Value.Tint); ("V", Value.Tint) ]
      (List.init n (fun i -> [ Value.Int i; Value.Int (i * 2) ]))
  in
  Catalog.register_relation catalog "BIG1" (mk 400);
  Catalog.register_relation catalog "BIG2" (mk 400);
  Catalog.register_relation catalog "TINY" (mk 4);
  let join_method_of text =
    let q = parse catalog text in
    let { Planner.plan; _ } = Planner.lower catalog q in
    let rec find = function
      | Exec.Plan.Join { method_; _ } -> Some method_
      | Exec.Plan.Project (_, n)
      | Exec.Plan.Filter (_, n)
      | Exec.Plan.Sort (_, n)
      | Exec.Plan.Distinct n
      | Exec.Plan.Hash_distinct n
      | Exec.Plan.Rename (_, n) ->
          find n
      | Exec.Plan.Group_agg { input; _ } | Exec.Plan.Hash_group_agg { input; _ }
        ->
          find input
      | Exec.Plan.Scan _ | Exec.Plan.Index_scan _ -> None
    in
    find plan
  in
  Alcotest.(check bool) "big-big uses merge" true
    (join_method_of "SELECT BIG1.V FROM BIG1, BIG2 WHERE BIG1.K = BIG2.K"
    = Some Exec.Plan.Sort_merge);
  Alcotest.(check bool) "big-tiny uses nested loops" true
    (join_method_of "SELECT BIG1.V FROM BIG1, TINY WHERE BIG1.K = TINY.K"
    = Some Exec.Plan.Nested_loop)

let test_planner_uses_index () =
  let pager = Pager.create ~buffer_pages:4 ~page_bytes:64 () in
  let catalog = Catalog.create pager in
  let mk n =
    Relation.of_values ~rel:"X"
      [ ("K", Value.Tint); ("V", Value.Tint) ]
      (List.init n (fun i -> [ Value.Int i; Value.Int (i * 2) ]))
  in
  Catalog.register_relation catalog "SMALL" (mk 5);
  Catalog.register_relation catalog "BIG" (mk 500);
  Catalog.create_index catalog "BIG" ~column:"K";
  let q =
    parse catalog "SELECT SMALL.V FROM SMALL, BIG WHERE SMALL.K = BIG.K"
  in
  let { Planner.plan; _ } = Planner.lower catalog q in
  let rec find = function
    | Exec.Plan.Join { method_; _ } -> Some method_
    | Exec.Plan.Project (_, n) | Exec.Plan.Filter (_, n)
    | Exec.Plan.Sort (_, n) | Exec.Plan.Distinct n
    | Exec.Plan.Hash_distinct n | Exec.Plan.Rename (_, n) ->
        find n
    | Exec.Plan.Group_agg { input; _ } | Exec.Plan.Hash_group_agg { input; _ } ->
        find input
    | Exec.Plan.Scan _ | Exec.Plan.Index_scan _ -> None
  in
  Alcotest.(check bool) "few probes into a big indexed table -> index join"
    true
    (find plan = Some Exec.Plan.Index_nl);
  (* and it computes the right answer *)
  let result = Exec.Plan.run catalog plan in
  let reference = Exec.Nested_iter.run catalog q in
  Alcotest.(check bool) "index plan matches reference" true
    (Relation.equal_bag reference result)

let test_restriction_after_outer_join_is_wrong () =
  (* §5.2: "the condition which applies to only one relation must be applied
     before the join is performed.  Otherwise the join would not contain the
     last row, and the result would be incorrect."  Build the wrong plan by
     hand — outer join first, date restriction after — and watch the COUNT
     for part 8 disappear. *)
  let catalog = F.parts_supply_catalog F.Count_bug in
  (* correct: TEMP2-style restriction below the outer join (this is what
     NEST-JA2 emits; validated elsewhere).  Wrong: filter above the join. *)
  let date_pred =
    Sql.Ast.Cmp
      ( Sql.Ast.Col { table = Some "SUPPLY"; column = "SHIPDATE" },
        Sql.Ast.Lt,
        Sql.Ast.Lit
          (Value.Date { Value.year = 1980; month = 1; day = 1 }) )
  in
  let join ~filtered_below =
    let right : Exec.Plan.node =
      if filtered_below then
        Exec.Plan.Filter ([ date_pred ], Exec.Plan.Scan "SUPPLY")
      else Exec.Plan.Scan "SUPPLY"
    in
    let joined =
      Exec.Plan.Join
        {
          method_ = Exec.Plan.Nested_loop;
          kind = Exec.Plan.Left_outer;
          cond =
            [ ( { Sql.Ast.table = Some "PARTS"; column = "PNUM" },
                Sql.Ast.Eq,
                { Sql.Ast.table = Some "SUPPLY"; column = "PNUM" } ) ];
          residual = [];
          left = Exec.Plan.Scan "PARTS";
          right;
        }
    in
    if filtered_below then joined else Exec.Plan.Filter ([ date_pred ], joined)
  in
  let count_of plan =
    Exec.Plan.run catalog
      (Exec.Plan.Group_agg
         {
           group_by = [ { Sql.Ast.table = Some "PARTS"; column = "PNUM" } ];
           aggs =
             [ { Exec.Plan.fn = Sql.Ast.Count (Sql.Ast.col ~table:"SUPPLY" "SHIPDATE");
                 out_name = "CT" } ];
           input = Exec.Plan.Sort ([ { Sql.Ast.table = Some "PARTS"; column = "PNUM" } ], plan);
         })
  in
  let good = count_of (join ~filtered_below:true) in
  let bad = count_of (join ~filtered_below:false) in
  (* good: parts 3->2, 8->0, 10->1.  bad: part 8 loses its padded row to the
     post-join filter (NULL date -> Unknown), so the group vanishes. *)
  Alcotest.(check int) "restriction below keeps all parts" 3
    (Relation.cardinality good);
  Alcotest.(check int) "restriction above loses the zero-count group" 2
    (Relation.cardinality bad)

let test_planner_distinct_group_by () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  let q = parse catalog "SELECT DISTINCT PNUM FROM SUPPLY" in
  let result = Exec.Plan.run catalog (Planner.lower catalog q).Planner.plan in
  Alcotest.(check (list int)) "distinct" [ 3; 8; 10 ] (ints result "PNUM");
  let q =
    parse catalog "SELECT PNUM, COUNT(SHIPDATE) FROM SUPPLY GROUP BY PNUM"
  in
  let result = Exec.Plan.run catalog (Planner.lower catalog q).Planner.plan in
  let reference = Exec.Nested_iter.run catalog q in
  Alcotest.(check bool) "group by matches reference" true
    (Relation.equal_bag reference result)

let test_planner_flat_queries_match_reference () =
  let catalog = F.kim_catalog () in
  let cases =
    [
      "SELECT SNAME FROM S WHERE STATUS > 15";
      "SELECT SNAME FROM S, SP WHERE S.SNO = SP.SNO AND QTY > 250";
      "SELECT S.SNO FROM S, SP, P WHERE S.SNO = SP.SNO AND SP.PNO = P.PNO \
       AND P.WEIGHT > 15";
      "SELECT DISTINCT ORIGIN FROM SP";
      "SELECT SNO, MAX(QTY) FROM SP GROUP BY SNO";
      "SELECT COUNT(QTY) FROM SP";
    ]
  in
  List.iter
    (fun text ->
      let q = parse catalog text in
      let reference = Exec.Nested_iter.run catalog q in
      let planned = Exec.Plan.run catalog (Planner.lower catalog q).Planner.plan in
      if not (Relation.equal_bag reference planned) then
        Alcotest.failf "planner differs for %s" text)
    cases

let test_plan_error_paths () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  let expect_plan_error f =
    try
      ignore (f ());
      false
    with Exec.Plan.Plan_error _ -> true
  in
  (* nested predicate reaching the physical layer *)
  Alcotest.(check bool) "nested predicate rejected" true
    (expect_plan_error (fun () ->
         Exec.Plan.run catalog
           (Exec.Plan.Filter
              ( [ Sql.Ast.Exists
                    (Sql.Ast.query ~select:[ Sql.Ast.Sel_star ]
                       ~from:[ Sql.Ast.from "SUPPLY" ] ~where:[] ()) ],
                Exec.Plan.Scan "PARTS" ))));
  (* sort-merge without an equality condition *)
  Alcotest.(check bool) "merge without equality rejected" true
    (expect_plan_error (fun () ->
         Exec.Plan.run catalog
           (Exec.Plan.Join
              {
                method_ = Exec.Plan.Sort_merge;
                kind = Exec.Plan.Inner;
                cond =
                  [ ( Sql.Ast.col ~table:"PARTS" "PNUM",
                      Sql.Ast.Lt,
                      Sql.Ast.col ~table:"SUPPLY" "PNUM" ) ];
                residual = [];
                left = Exec.Plan.Scan "PARTS";
                right = Exec.Plan.Scan "SUPPLY";
              })));
  (* index join without an index *)
  Alcotest.(check bool) "index join without index rejected" true
    (expect_plan_error (fun () ->
         Exec.Plan.run catalog
           (Exec.Plan.Join
              {
                method_ = Exec.Plan.Index_nl;
                kind = Exec.Plan.Inner;
                cond =
                  [ ( Sql.Ast.col ~table:"PARTS" "PNUM",
                      Sql.Ast.Eq,
                      Sql.Ast.col ~table:"SUPPLY" "PNUM" ) ];
                residual = [];
                left = Exec.Plan.Scan "PARTS";
                right = Exec.Plan.Scan "SUPPLY";
              })));
  (* planner refuses a query that still nests *)
  Alcotest.(check bool) "planner refuses nested query" true
    (try
       ignore (Planner.lower catalog (parse catalog F.query_q2));
       false
     with Planner.Planning_error _ | Exec.Plan.Plan_error _ -> true)

let test_explain_runs () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  let q = parse catalog F.query_q2 in
  let program =
    Nest_g.transform ~fresh:(fun () -> Catalog.fresh_temp_name catalog) q
  in
  let text = Planner.explain catalog program in
  Alcotest.(check bool) "mentions temps" true
    (String.length text > 0
    && String.split_on_char '\n' text
       |> List.exists (fun l -> String.length l >= 4 && String.sub l 0 4 = "temp"))

let suites =
  [
    ( "optimizer.classify",
      [
        Alcotest.test_case "paper examples" `Quick test_classify_paper_examples;
        Alcotest.test_case "flat query" `Quick test_classify_flat;
      ] );
    ( "optimizer.nest_n_j",
      [
        Alcotest.test_case "example 1" `Quick test_nest_nj_example1;
        Alcotest.test_case "alias conflicts" `Quick test_nest_nj_alias_conflict;
        Alcotest.test_case "merge_all siblings" `Quick test_nest_nj_merge_all;
        Alcotest.test_case "rejects aggregates" `Quick test_nest_nj_rejects_agg;
      ] );
    ( "optimizer.nest_ja_bugs",
      [
        Alcotest.test_case "COUNT bug reproduced (E3)" `Quick
          test_kim_ja_count_bug;
        Alcotest.test_case "non-equality bug reproduced (E4)" `Quick
          test_kim_ja_neq_bug;
      ] );
    ( "optimizer.nest_ja2",
      [
        Alcotest.test_case "fixes COUNT bug (E3)" `Quick
          test_ja2_fixes_count_bug;
        Alcotest.test_case "COUNT(*) conversion (§5.2.1)" `Quick
          test_ja2_count_star;
        Alcotest.test_case "fixes non-equality bug (E4)" `Quick
          test_ja2_fixes_neq_bug;
        Alcotest.test_case "fixes duplicates problem (E5)" `Quick
          test_ja2_fixes_duplicates;
        Alcotest.test_case "unprojected variant wrong (§5.4)" `Quick
          test_ja2_unprojected_variant_still_wrong;
        Alcotest.test_case "restriction before join (§5.2)" `Quick
          test_ja2_restriction_before_join;
        Alcotest.test_case "outer simple predicates (step 1)" `Quick
          test_ja2_outer_simple_predicates_restrict_temp1;
        Alcotest.test_case "multi-column correlation" `Quick
          test_ja2_multi_column_correlation;
      ] );
    ( "optimizer.extensions",
      [
        Alcotest.test_case "rewrite shapes" `Quick test_extension_rewrites_shapes;
        Alcotest.test_case "semantics preserved" `Quick test_extension_semantics;
        Alcotest.test_case "unsound-rule goldens (safe vs paper)" `Quick
          test_extension_unsound_rule_golden;
        Alcotest.test_case "= ALL unsupported" `Quick
          test_extension_eq_all_unsupported;
      ] );
    ( "optimizer.nest_g",
      [
        Alcotest.test_case "paper queries end to end" `Quick
          test_nest_g_paper_queries;
        Alcotest.test_case "two levels (N in J)" `Quick test_nest_g_two_levels;
        Alcotest.test_case "JA at depth" `Quick test_nest_g_ja_inside_j;
        Alcotest.test_case "trans-aggregate correlation" `Quick
          test_nest_g_trans_aggregate;
        Alcotest.test_case "safe vs paper semantics" `Quick
          test_nest_g_safe_vs_paper_semantics;
        Alcotest.test_case "figure 2 tree shape (E6)" `Quick
          test_nest_g_figure2_tree;
        Alcotest.test_case "NOT IN unsupported" `Quick
          test_nest_g_not_in_unsupported;
        Alcotest.test_case "NOT IN extension" `Quick test_nest_g_not_in_extension;
        Alcotest.test_case "join methods agree" `Quick test_force_methods_agree;
      ] );
    ( "optimizer.cost",
      [
        Alcotest.test_case "§7.4 example (E2)" `Quick test_cost_sect_7_4;
        Alcotest.test_case "figure 1 type-N (E1)" `Quick test_cost_figure1_type_n;
        Alcotest.test_case "monotonicity" `Quick test_cost_monotonic;
        Alcotest.test_case "80-95% savings shape" `Quick test_cost_savings_shape;
      ] );
    ( "optimizer.planner",
      [
        Alcotest.test_case "pushes restrictions" `Quick
          test_planner_pushes_restrictions;
        Alcotest.test_case "join method choice" `Quick
          test_planner_join_method_choice;
        Alcotest.test_case "distinct / group by" `Quick
          test_planner_distinct_group_by;
        Alcotest.test_case "index access path" `Quick test_planner_uses_index;
        Alcotest.test_case "restriction ordering (§5.2 warning)" `Quick
          test_restriction_after_outer_join_is_wrong;
        Alcotest.test_case "flat queries match reference" `Quick
          test_planner_flat_queries_match_reference;
        Alcotest.test_case "explain" `Quick test_explain_runs;
        Alcotest.test_case "error paths" `Quick test_plan_error_paths;
      ] );
  ]
