(* Randomized equivalence properties for the physical operators: the three
   join algorithms must agree with each other (inner and left-outer, NULL
   keys, many-to-many duplicate keys), and the hash operators must agree
   with their sort-based counterparts.  Inputs come from
   [Workload.Gen.keyed_relation]; results are compared as bags. *)

module Value = Relalg.Value
module Row = Relalg.Row
module Schema = Relalg.Schema
module Relation = Relalg.Relation
module Iterator = Exec.Iterator
module Pager = Storage.Pager
module Heap_file = Storage.Heap_file
module G = Workload.Gen

let fresh_pager () = Pager.create ~buffer_pages:4 ~page_bytes:32 ()

let bag it = List.sort Row.compare (Iterator.to_rows it)

let check_bags name a b =
  if a <> b then begin
    Fmt.epr "@.%s mismatch:@.%a@.vs@.%a@." name
      Fmt.(list ~sep:(any "; ") Row.pp)
      a
      Fmt.(list ~sep:(any "; ") Row.pp)
      b;
    false
  end
  else true

(* Random left/right inputs sharing a key range, so keys collide across the
   two sides (many-to-many) but some stay unmatched (outer-join padding). *)
let join_inputs rng =
  let key_range = G.int_in rng 1 5 in
  let left =
    G.keyed_relation rng ~rel:"L" ~n:(G.int_in rng 0 30) ~key_range
      ~null_pct:15
  in
  let right =
    G.keyed_relation rng ~rel:"R" ~n:(G.int_in rng 0 30) ~key_range
      ~null_pct:15
  in
  (left, right)

(* The three joins on key column 0 (equality, SQL semantics: NULL keys never
   join).  The stored right side and the sorts go through a tiny pool, so
   external-sort spill paths run too. *)
let trial_join ~outer seed =
  let rng = Random.State.make [| seed |] in
  let left, right = join_inputs rng in
  let pager = fresh_pager () in
  let theta l r = Exec.Eval.cmp_values Sql.Ast.Eq (Row.get l 0) (Row.get r 0) in
  let nl =
    let right_heap = Heap_file.of_relation pager right in
    bag
      (Iterator.nested_loop_join ~outer_join:outer ~theta
         (Iterator.of_relation left) right_heap)
  in
  let merge =
    let sorted rel =
      Iterator.sort pager ~key:[ 0 ] (Iterator.of_relation rel)
    in
    bag
      (Iterator.merge_join ~outer_join:outer ~left_key:[ 0 ] ~right_key:[ 0 ]
         (sorted left) (sorted right))
  in
  let hash =
    bag
      (Iterator.hash_join ~outer_join:outer ~left_key:[ 0 ] ~right_key:[ 0 ]
         (Iterator.of_relation left) (Iterator.of_relation right))
  in
  check_bags "merge vs nested-loop" merge nl && check_bags "hash vs merge" hash merge

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let prop_joins_inner =
  QCheck2.Test.make ~name:"nl = merge = hash (inner, NULL/dup keys)"
    ~count:200 seed_gen (trial_join ~outer:false)

let prop_joins_outer =
  QCheck2.Test.make ~name:"nl = merge = hash (left-outer, NULL/dup keys)"
    ~count:200 seed_gen (trial_join ~outer:true)

(* Null-safe (<=>) key columns: NULL must match NULL in every algorithm.
   Reference: nested loop with an Eq_null theta. *)
let trial_join_null_safe ~outer seed =
  let rng = Random.State.make [| seed |] in
  let left, right = join_inputs rng in
  let pager = fresh_pager () in
  let theta l r =
    Exec.Eval.cmp_values Sql.Ast.Eq_null (Row.get l 0) (Row.get r 0)
  in
  let nl =
    let right_heap = Heap_file.of_relation pager right in
    bag
      (Iterator.nested_loop_join ~outer_join:outer ~theta
         (Iterator.of_relation left) right_heap)
  in
  let merge =
    let sorted rel =
      Iterator.sort pager ~key:[ 0 ] (Iterator.of_relation rel)
    in
    bag
      (Iterator.merge_join ~outer_join:outer ~null_safe:[ true ]
         ~left_key:[ 0 ] ~right_key:[ 0 ] (sorted left) (sorted right))
  in
  let hash =
    bag
      (Iterator.hash_join ~outer_join:outer ~null_safe:[ true ]
         ~left_key:[ 0 ] ~right_key:[ 0 ] (Iterator.of_relation left)
         (Iterator.of_relation right))
  in
  check_bags "null-safe merge vs nested-loop" merge nl
  && check_bags "null-safe hash vs merge" hash merge

let prop_joins_null_safe_inner =
  QCheck2.Test.make ~name:"nl = merge = hash (<=> keys, inner)" ~count:200
    seed_gen
    (trial_join_null_safe ~outer:false)

let prop_joins_null_safe_outer =
  QCheck2.Test.make ~name:"nl = merge = hash (<=> keys, left-outer)"
    ~count:200 seed_gen
    (trial_join_null_safe ~outer:true)

(* Mixed Int/Float join keys: Value.compare unifies 1 and 1.0, so the hash
   paths must too (Value.hash sends Int through its float) — a structural
   hash table would silently drop these matches. *)
let float_keyed rng ~rel ~n ~key_range ~null_pct =
  let key () =
    if G.int_in rng 1 100 <= null_pct then Value.Null
    else
      let k = float_of_int (G.int_in rng 1 key_range) in
      Value.Float (if Random.State.bool rng then k else k +. 0.5)
  in
  Relation.of_values ~rel
    [ ("K", Value.Tfloat); ("V", Value.Tint) ]
    (List.init n (fun _ -> [ key (); Value.Int (G.int_in rng 0 9) ]))

let trial_join_mixed_types seed =
  let rng = Random.State.make [| seed |] in
  let key_range = G.int_in rng 1 5 in
  let left =
    G.keyed_relation rng ~rel:"L" ~n:(G.int_in rng 0 30) ~key_range
      ~null_pct:15
  in
  let right =
    float_keyed rng ~rel:"R" ~n:(G.int_in rng 0 30) ~key_range ~null_pct:15
  in
  let pager = fresh_pager () in
  let theta l r = Exec.Eval.cmp_values Sql.Ast.Eq (Row.get l 0) (Row.get r 0) in
  let nl =
    let right_heap = Heap_file.of_relation pager right in
    bag
      (Iterator.nested_loop_join ~theta (Iterator.of_relation left) right_heap)
  in
  let merge =
    let sorted rel =
      Iterator.sort pager ~key:[ 0 ] (Iterator.of_relation rel)
    in
    bag
      (Iterator.merge_join ~left_key:[ 0 ] ~right_key:[ 0 ] (sorted left)
         (sorted right))
  in
  let hash =
    bag
      (Iterator.hash_join ~left_key:[ 0 ] ~right_key:[ 0 ]
         (Iterator.of_relation left) (Iterator.of_relation right))
  in
  check_bags "mixed-type merge vs nested-loop" merge nl
  && check_bags "mixed-type hash vs merge" hash merge

let prop_joins_mixed_types =
  QCheck2.Test.make ~name:"nl = merge = hash (Int vs Float keys)" ~count:200
    seed_gen trial_join_mixed_types

(* Hash dedup vs sort-based DISTINCT: same set of rows (the sorted one is
   already in order; the hash one preserves first-occurrence order). *)
let trial_distinct seed =
  let rng = Random.State.make [| seed |] in
  let rel =
    G.keyed_relation rng ~rel:"T" ~n:(G.int_in rng 0 60)
      ~key_range:(G.int_in rng 1 4) ~null_pct:20
  in
  let sorted = bag (Iterator.distinct (fresh_pager ()) (Iterator.of_relation rel)) in
  let hashed = bag (Iterator.hash_distinct (Iterator.of_relation rel)) in
  check_bags "hash_distinct vs distinct" hashed sorted

let prop_distinct =
  QCheck2.Test.make ~name:"hash_distinct = sort-based distinct" ~count:200
    seed_gen trial_distinct

(* Hash aggregation vs sorted-stream aggregation, grouping by the nullable
   K and aggregating the nullable V with every integer aggregate.  (AVG is
   exercised separately: float summation order differs between a sorted and
   an unsorted scan.) *)
let agg_specs =
  let v = { Sql.Ast.table = None; column = "V" } in
  [
    { Iterator.fn = Sql.Ast.Count_star; arg = None };
    { Iterator.fn = Sql.Ast.Count v; arg = Some 1 };
    { Iterator.fn = Sql.Ast.Sum v; arg = Some 1 };
    { Iterator.fn = Sql.Ast.Max v; arg = Some 1 };
    { Iterator.fn = Sql.Ast.Min v; arg = Some 1 };
  ]

let agg_schema ~with_key =
  Schema.of_columns ~rel:"agg"
    ((if with_key then [ ("K", Value.Tint) ] else [])
    @ [
        ("CNT_STAR", Value.Tint); ("CNT", Value.Tint); ("SUM", Value.Tint);
        ("MAX", Value.Tint); ("MIN", Value.Tint);
      ])

let trial_group_agg seed =
  let rng = Random.State.make [| seed |] in
  let rel =
    G.keyed_relation rng ~rel:"T" ~n:(G.int_in rng 0 60)
      ~key_range:(G.int_in rng 1 4) ~null_pct:20
  in
  let grouped =
    let schema = agg_schema ~with_key:true in
    let sorted =
      bag
        (Iterator.group_agg_sorted ~group_key:[ 0 ] ~aggs:agg_specs ~schema
           (Iterator.sort (fresh_pager ()) ~key:[ 0 ]
              (Iterator.of_relation rel)))
    in
    let hashed =
      bag
        (Iterator.hash_group_agg ~group_key:[ 0 ] ~aggs:agg_specs ~schema
           (Iterator.of_relation rel))
    in
    check_bags "hash_group_agg vs group_agg_sorted" hashed sorted
  in
  let global =
    (* Empty group key: exactly one row either way, even on empty input. *)
    let schema = agg_schema ~with_key:false in
    let sorted =
      bag
        (Iterator.group_agg_sorted ~group_key:[] ~aggs:agg_specs ~schema
           (Iterator.of_relation rel))
    in
    let hashed =
      bag
        (Iterator.hash_group_agg ~group_key:[] ~aggs:agg_specs ~schema
           (Iterator.of_relation rel))
    in
    List.length hashed = 1 && check_bags "global hash_group_agg" hashed sorted
  in
  grouped && global

let prop_group_agg =
  QCheck2.Test.make ~name:"hash_group_agg = group_agg_sorted" ~count:200
    seed_gen trial_group_agg

(* ------------------------------------------------------------------ *)
(* Planner modes                                                       *)
(* ------------------------------------------------------------------ *)

module Catalog = Storage.Catalog
module F = Workload.Fixtures
open Optimizer

(* Hybrid planning must never change results — only plans.  Same data and
   query, one catalog per mode (temps would collide otherwise). *)
let trial_modes seed =
  let make_catalog () =
    let rng = Random.State.make [| seed |] in
    G.parts_supply_catalog rng
      ~buffer_pages:64 (* ample pool: hash paths eligible *)
      ~n_parts:(G.int_in rng 1 12)
      ~n_supply:(G.int_in rng 0 25)
      ~key_range:(G.int_in rng 1 8)
  in
  let query_of rng = G.ja_query rng in
  let run mode =
    let catalog = make_catalog () in
    let rng = Random.State.make [| seed + 1 |] in
    let q = F.parse_analyzed catalog (query_of rng) in
    let program =
      Nest_g.transform ~fresh:(fun () -> Catalog.fresh_temp_name catalog) q
    in
    Planner.run_program ~mode ~verify:true catalog program
  in
  Relation.equal_bag (run Planner.Paper1987) (run Planner.Hybrid)

let prop_modes =
  QCheck2.Test.make ~name:"hybrid mode = paper mode results (random JA)"
    ~count:100 seed_gen trial_modes

(* Directed checks that Hybrid actually switches operators when profitable
   (and Paper1987 never does). *)
let rec plan_has pred (n : Exec.Plan.node) =
  pred n
  ||
  match n with
  | Exec.Plan.Scan _ | Exec.Plan.Index_scan _ -> false
  | Exec.Plan.Rename (_, i)
  | Exec.Plan.Filter (_, i)
  | Exec.Plan.Project (_, i)
  | Exec.Plan.Distinct i
  | Exec.Plan.Hash_distinct i
  | Exec.Plan.Sort (_, i) ->
      plan_has pred i
  | Exec.Plan.Join { left; right; _ } ->
      plan_has pred left || plan_has pred right
  | Exec.Plan.Group_agg { input; _ } | Exec.Plan.Hash_group_agg { input; _ } ->
      plan_has pred input

let big_catalog () =
  G.scaled_catalog ~buffer_pages:256 ~page_bytes:128 ~seed:3 ~n_parts:50
    ~supply_per_part:8 ()

let test_hybrid_picks_hash_agg () =
  let catalog = big_catalog () in
  let q =
    F.parse_analyzed catalog
      "SELECT PNUM, COUNT(QUAN) FROM SUPPLY GROUP BY PNUM"
  in
  let is_hash_agg = function Exec.Plan.Hash_group_agg _ -> true | _ -> false in
  let hybrid = (Planner.lower ~mode:Planner.Hybrid catalog q).Planner.plan in
  let paper = (Planner.lower catalog q).Planner.plan in
  Alcotest.(check bool) "hybrid uses hash agg" true (plan_has is_hash_agg hybrid);
  Alcotest.(check bool) "paper mode never does" false
    (plan_has is_hash_agg paper);
  Alcotest.(check bool) "same result" true
    (Relation.equal_bag (Exec.Plan.run catalog hybrid)
       (Exec.Plan.run catalog paper))

let test_hybrid_picks_hash_distinct () =
  let catalog = big_catalog () in
  let q =
    F.parse_analyzed catalog "SELECT DISTINCT PNUM FROM SUPPLY"
  in
  let is_hash_distinct = function
    | Exec.Plan.Hash_distinct _ -> true
    | _ -> false
  in
  let hybrid = (Planner.lower ~mode:Planner.Hybrid catalog q).Planner.plan in
  let paper = (Planner.lower catalog q).Planner.plan in
  Alcotest.(check bool) "hybrid uses hash distinct" true
    (plan_has is_hash_distinct hybrid);
  Alcotest.(check bool) "paper mode never does" false
    (plan_has is_hash_distinct paper);
  Alcotest.(check bool) "same result (as sets)" true
    (Relation.equal_set (Exec.Plan.run catalog hybrid)
       (Exec.Plan.run catalog paper))

let suites =
  [
    ( "operators.equivalence",
      [
        QCheck_alcotest.to_alcotest prop_joins_inner;
        QCheck_alcotest.to_alcotest prop_joins_outer;
        QCheck_alcotest.to_alcotest prop_joins_null_safe_inner;
        QCheck_alcotest.to_alcotest prop_joins_null_safe_outer;
        QCheck_alcotest.to_alcotest prop_joins_mixed_types;
        QCheck_alcotest.to_alcotest prop_distinct;
        QCheck_alcotest.to_alcotest prop_group_agg;
      ] );
    ( "operators.planner_modes",
      [
        QCheck_alcotest.to_alcotest prop_modes;
        Alcotest.test_case "hybrid picks hash agg" `Quick
          test_hybrid_picks_hash_agg;
        Alcotest.test_case "hybrid picks hash distinct" `Quick
          test_hybrid_picks_hash_distinct;
      ] );
  ]
