(* The batched-bindings strategy (Optimizer.Batched_nest).

   Two layers: qcheck properties asserting batched ≡ nested iteration per
   Kim query type over adversarial data profiles (NULL-dense columns,
   duplicate-skewed keys, empty relations on either side), and goldens
   pinning the batching arithmetic itself — dedup counts at batch
   boundaries (duplicate and NULL keys share a binding), the uncorrelated
   degenerate case, the refused-then-batched ladder, and the execution
   record surfaced through [Core.run]. *)

module Value = Relalg.Value
module Relation = Relalg.Relation
module Planner = Optimizer.Planner
module Batched = Optimizer.Batched_nest
module G = Workload.Gen
module Matrix = Oracle.Matrix
module Repro = Oracle.Repro

let refusal msg =
  Astring.String.is_prefix ~affix:"not transformable:" msg

(* ------------------------------------------------------------------ *)
(* Properties: batched ≡ nested iteration per Kim type                 *)
(* ------------------------------------------------------------------ *)

(* Data profiles the rewrites have historically been wrong on, and which
   stress exactly what batching adds: NULL keys must form one batch,
   duplicate-skewed keys must dedup, empty relations must short-circuit. *)
let adversarial_case rng qgen : Repro.case =
  let null_pct, key_range, n_parts, n_supply =
    match G.pick rng [ `Null_dense; `Dup_skew; `Empty ] with
    | `Null_dense -> (40, 3, G.int_in rng 1 6, G.int_in rng 1 9)
    | `Dup_skew -> (10, 1, G.int_in rng 2 8, G.int_in rng 3 12)
    | `Empty -> (15, 2, G.pick rng [ 0; 0; 3 ], G.pick rng [ 0; 0; 5 ])
  in
  {
    Repro.tables =
      [
        ("PARTS", G.parts ~null_pct rng ~n:n_parts ~key_range);
        ("SUPPLY", G.supply ~null_pct rng ~n:n_supply ~key_range);
      ];
    sql = qgen rng;
  }

(* Batched must agree with the non-optimizing reference under the oracle
   comparator; the only acceptable non-answer is the documented refusal
   (correlated column outside a WHERE predicate). *)
let batched_matches_reference ~name qgen =
  QCheck2.Test.make ~name ~count:80
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let case = adversarial_case rng qgen in
      match Matrix.run_reference case with
      | Error _ -> QCheck2.assume_fail ()
      | Ok reference -> (
          let db = Repro.build_db case in
          let q =
            match Core.parse db case.Repro.sql with
            | Ok q -> q
            | Error e -> QCheck2.Test.fail_reportf "parse: %s" e
          in
          match
            Core.run ~strategy:(Core.Batched Planner.Auto) db case.Repro.sql
          with
          | Ok e ->
              Matrix.results_agree ~q ~reference ~got:e.Core.result
              || QCheck2.Test.fail_reportf "batched disagrees on %s"
                   case.Repro.sql
          | Error msg ->
              refusal msg
              || QCheck2.Test.fail_reportf "batched failed on %s: %s"
                   case.Repro.sql msg
          | exception Exec.Nested_iter.Runtime_error msg ->
              QCheck2.Test.fail_reportf
                "batched raised %S where the reference answered on %s" msg
                case.Repro.sql))

let prop_type_n =
  batched_matches_reference ~name:"batched ≡ nested: type-N" G.n_query

let prop_type_a =
  batched_matches_reference ~name:"batched ≡ nested: type-A" G.a_query

let prop_type_j =
  batched_matches_reference ~name:"batched ≡ nested: type-J" G.j_query

let prop_type_ja =
  batched_matches_reference ~name:"batched ≡ nested: type-JA" G.ja_query

let prop_deep =
  batched_matches_reference ~name:"batched ≡ nested: multi-level" G.deep_query

(* ------------------------------------------------------------------ *)
(* Goldens: the batching arithmetic                                    *)
(* ------------------------------------------------------------------ *)

let db_with_parts_pnums pnums =
  let db = Core.create_db ~buffer_pages:8 ~page_bytes:256 () in
  Core.define_table db "PARTS"
    [ ("PNUM", Value.Tint); ("QOH", Value.Tint) ]
    (List.map (fun p -> [ p; Value.Int 1 ]) pnums);
  Core.define_table db "SUPPLY"
    [ ("PNUM", Value.Tint); ("QUAN", Value.Tint); ("SHIPDATE", Value.Tdate) ]
    [ [ Value.Int 1; Value.Int 1; Value.Null ];
      [ Value.Int 2; Value.Int 1; Value.Null ] ];
  db

let ja_sql =
  "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(QUAN) FROM SUPPLY WHERE \
   SUPPLY.PNUM = PARTS.PNUM)"

let run_batched db sql =
  Batched.run (Core.catalog db)
    (Workload.Fixtures.parse_analyzed (Core.catalog db) sql)

(* Duplicate and NULL outer keys collapse: 7 outer rows over key values
   [1;1;2;2;2;NULL;NULL] are exactly 3 binding batches — the null-safe
   dedup treats the two NULLs as one batch and never as distinct rows. *)
let test_dedup_counts () =
  let pnums =
    Value.[ Int 1; Int 1; Int 2; Int 2; Int 2; Null; Null ]
  in
  let r = run_batched (db_with_parts_pnums pnums) ja_sql in
  match r.Batched.batches with
  | [ b ] ->
      Alcotest.(check int) "outer rows" 7 b.Batched.outer_rows;
      Alcotest.(check int) "binding batches" 3 b.Batched.bindings;
      (* COUNT = 0 for the NULL batch (= no SUPPLY match) never equals
         QOH = 1, and keys 1 and 2 each count one supply row = QOH *)
      Alcotest.(check int) "result rows" 5 (Relation.cardinality r.Batched.relation)
  | bs -> Alcotest.failf "expected one batch record, got %d" (List.length bs)

(* An empty outer block needs no inner evaluation at all. *)
let test_empty_outer () =
  let r = run_batched (db_with_parts_pnums []) ja_sql in
  (match r.Batched.batches with
  | [ b ] ->
      Alcotest.(check int) "no outer rows" 0 b.Batched.outer_rows;
      Alcotest.(check int) "no bindings" 0 b.Batched.bindings
  | bs -> Alcotest.failf "expected one batch record, got %d" (List.length bs));
  Alcotest.(check int) "empty result" 0
    (Relation.cardinality r.Batched.relation)

(* An uncorrelated subquery has no correlation keys: it is evaluated once
   and records no batch line (type-A degenerates to memoization). *)
let test_uncorrelated_records_no_batches () =
  let r =
    run_batched
      (db_with_parts_pnums Value.[ Int 1; Int 2 ])
      "SELECT PNUM FROM PARTS WHERE QOH <= (SELECT COUNT(QUAN) FROM SUPPLY)"
  in
  Alcotest.(check int) "no batch records" 0 (List.length r.Batched.batches);
  Alcotest.(check int) "both rows kept" 2
    (Relation.cardinality r.Batched.relation)

(* correlation_keys is the static face of the same analysis. *)
let test_correlation_keys () =
  let db = Fixtures.count_bug_db () in
  let sub_of sql =
    let q = Workload.Fixtures.parse_analyzed (Core.catalog db) sql in
    match q.Sql.Ast.where with
    | [ Sql.Ast.Cmp_subq (_, _, sub) ] -> sub
    | _ -> Alcotest.fail "expected one scalar-subquery predicate"
  in
  let keys =
    Batched.correlation_keys (sub_of Fixtures.count_bug_query)
  in
  Alcotest.(check (list string)) "batches on PARTS.PNUM" [ "PARTS.PNUM" ]
    (List.map
       (fun (c : Sql.Ast.col_ref) ->
         Option.value c.Sql.Ast.table ~default:"?" ^ "." ^ c.Sql.Ast.column)
       keys);
  Alcotest.(check (list string)) "uncorrelated has none" []
    (List.map
       (fun (c : Sql.Ast.col_ref) -> c.Sql.Ast.column)
       (Batched.correlation_keys
          (sub_of
             "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(QUAN) FROM \
              SUPPLY)")))

(* Static EXPLAIN (no ~analyze) names the correlation keys per batch
   line but reports no measured counts — the query must not run. *)
let test_static_explain () =
  let db = db_with_parts_pnums Value.[ Int 1; Int 2 ] in
  let q = Workload.Fixtures.parse_analyzed (Core.catalog db) ja_sql in
  let text = Batched.explain (Core.catalog db) q in
  Alcotest.(check bool) "names the correlation key" true
    (Astring.String.is_infix ~affix:"batched on PARTS.PNUM" text);
  Alcotest.(check bool) "no measured batch counts statically" false
    (Astring.String.is_infix ~affix:"outer rows" text)

(* Correlated [NOT] EXISTS batches like any other WHERE subquery; an
   empty inner relation makes EXISTS vacuously false and NOT EXISTS
   vacuously true for every binding. *)
let test_exists_batching () =
  let db = db_with_parts_pnums Value.[ Int 1; Int 2; Int 9 ] in
  let exists_sql =
    "SELECT PNUM FROM PARTS WHERE EXISTS (SELECT QUAN FROM SUPPLY WHERE \
     SUPPLY.PNUM = PARTS.PNUM)"
  and not_exists_sql =
    "SELECT PNUM FROM PARTS WHERE NOT EXISTS (SELECT QUAN FROM SUPPLY \
     WHERE SUPPLY.PNUM = PARTS.PNUM)"
  in
  let rows sql =
    (run_batched db sql).Batched.relation |> Relation.rows |> List.length
  in
  (* keys 1 and 2 have SUPPLY rows; 9 does not *)
  Alcotest.(check int) "EXISTS keeps supplied keys" 2 (rows exists_sql);
  Alcotest.(check int) "NOT EXISTS keeps the unsupplied key" 1
    (rows not_exists_sql);
  let reference sql =
    Exec.Nested_iter.run (Core.catalog db)
      (Workload.Fixtures.parse_analyzed (Core.catalog db) sql)
  in
  List.iter
    (fun sql ->
      Alcotest.(check bool) "batched ≡ nested" true
        (Relation.equal_bag (reference sql)
           (run_batched db sql).Batched.relation))
    [ exists_sql; not_exists_sql ]

(* ------------------------------------------------------------------ *)
(* Free-variable analysis (Sql.Ast.free_col_refs)                      *)
(* ------------------------------------------------------------------ *)

let parse_on db sql = Workload.Fixtures.parse_analyzed (Core.catalog db) sql

let first_sub (q : Sql.Ast.query) =
  match q.Sql.Ast.where with
  | Sql.Ast.Cmp_subq (_, _, sub) :: _ -> sub
  | _ -> Alcotest.fail "expected a leading scalar-subquery predicate"

(* An inner block re-binding SUPPLY shadows it: the outer subquery's only
   free reference is PARTS.PNUM, deduplicated across its two occurrences
   (one of them inside the nested block), and classified [`Predicate]. *)
let test_free_refs_shadowing () =
  let db = Fixtures.count_bug_db () in
  let sub =
    first_sub
      (parse_on db
         "SELECT PNUM FROM PARTS WHERE QOH = (SELECT MAX(QUAN) FROM SUPPLY \
          WHERE SUPPLY.PNUM = PARTS.PNUM AND QUAN = (SELECT COUNT(QUAN) \
          FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM))")
  in
  match Sql.Ast.free_col_refs sub with
  | [ (c, `Predicate) ] ->
      Alcotest.(check string) "table" "PARTS"
        (Option.value c.Sql.Ast.table ~default:"?");
      Alcotest.(check string) "column" "PNUM" c.Sql.Ast.column
  | refs -> Alcotest.failf "expected one predicate-position ref, got %d"
              (List.length refs)

(* A free reference inside an aggregate argument is an [`Other] position.
   The analyzer already rejects that shape in this dialect (aggregate
   arguments resolve against the local frame only), so correlation_keys'
   guard is exercised on the raw parsed AST — the defensive path for
   hand-built queries. *)
let test_unbatchable_position_refuses () =
  let sql =
    "SELECT PNUM FROM PARTS WHERE QOH = (SELECT MAX(PARTS.QOH) FROM SUPPLY)"
  in
  let sub = first_sub (Sql.Parser.parse_exn sql) in
  (match Sql.Ast.free_col_refs sub with
  | [ (c, `Other) ] ->
      Alcotest.(check string) "column" "QOH" c.Sql.Ast.column
  | _ -> Alcotest.fail "expected one other-position free ref");
  match Batched.correlation_keys sub with
  | exception Batched.Unsupported msg ->
      Alcotest.(check bool) "message names the column" true
        (Astring.String.is_infix ~affix:"QOH" msg)
  | _ -> Alcotest.fail "expected Unsupported on an aggregate-argument ref"

(* ------------------------------------------------------------------ *)
(* The estimator behind Auto                                           *)
(* ------------------------------------------------------------------ *)

(* Duplicate-skewed keys make batching attractive; all-distinct keys make
   it pointless (as many inner evaluations as nested iteration). *)
let test_estimate_prefers_batched_on_skew () =
  let skew_db =
    let db = Core.create_db ~buffer_pages:8 ~page_bytes:256 () in
    Core.define_table db "PARTS"
      [ ("PNUM", Value.Tint); ("QOH", Value.Tint) ]
      (List.init 40 (fun i -> [ Value.Int (i mod 2); Value.Int 1 ]));
    Core.define_table db "SUPPLY"
      [ ("PNUM", Value.Tint); ("QUAN", Value.Tint) ]
      [ [ Value.Int 0; Value.Int 1 ]; [ Value.Int 1; Value.Int 2 ] ];
    db
  in
  let q =
    parse_on skew_db
      "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(QUAN) FROM SUPPLY \
       WHERE SUPPLY.PNUM = PARTS.PNUM)"
  in
  Alcotest.(check bool) "2 distinct keys over 40 rows: batched" true
    (Optimizer.Estimate.prefer_batched (Core.catalog skew_db) q);
  (match Optimizer.Estimate.batched_fallback (Core.catalog skew_db) q with
  | Some fb ->
      Alcotest.(check bool) "outer rows" true (fb.Optimizer.Estimate.fb_outer_rows = 40.);
      Alcotest.(check bool) "batched evals < nested evals" true
        (fb.Optimizer.Estimate.fb_batched_evals
        < fb.Optimizer.Estimate.fb_nested_evals)
  | None -> Alcotest.fail "expected a fallback estimate");
  let unique_db =
    let db = Core.create_db ~buffer_pages:8 ~page_bytes:256 () in
    Core.define_table db "PARTS"
      [ ("PNUM", Value.Tint); ("QOH", Value.Tint) ]
      (List.init 40 (fun i -> [ Value.Int i; Value.Int 1 ]));
    Core.define_table db "SUPPLY"
      [ ("PNUM", Value.Tint); ("QUAN", Value.Tint) ]
      [ [ Value.Int 0; Value.Int 1 ] ];
    db
  in
  let q =
    parse_on unique_db
      "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(QUAN) FROM SUPPLY \
       WHERE SUPPLY.PNUM = PARTS.PNUM)"
  in
  Alcotest.(check bool) "all-distinct keys: no batched preference" false
    (Optimizer.Estimate.prefer_batched (Core.catalog unique_db) q)

(* strategy_of_string accepts what the CLI/REPL/server advertise and
   round-trips through strategy_name. *)
let test_strategy_names () =
  let names s =
    Option.map Core.strategy_name (Core.strategy_of_string s)
  in
  Alcotest.(check (option string)) "auto" (Some "auto") (names "auto");
  Alcotest.(check (option string)) "nested" (Some "nested") (names "nested");
  Alcotest.(check (option string)) "nested-iteration alias" (Some "nested")
    (names "nested-iteration");
  Alcotest.(check (option string)) "transformed" (Some "transformed")
    (names "Transformed");
  Alcotest.(check (option string)) "batched" (Some "batched")
    (names "BATCHED");
  Alcotest.(check (option string)) "unknown" None (names "sideways")

(* ------------------------------------------------------------------ *)
(* Planner knob sweep and runtime-error parity                         *)
(* ------------------------------------------------------------------ *)

(* The forced-join and engine knobs steer the outer-block plan; none of
   them may change the answer. *)
let test_forced_joins_and_engines_agree () =
  let db = Fixtures.count_bug_db () in
  let q = parse_on db Fixtures.count_bug_query in
  let baseline =
    (Batched.run (Core.catalog db) q).Batched.relation
  in
  List.iter
    (fun force ->
      List.iter
        (fun engine ->
          List.iter
            (fun mode ->
              let db = Fixtures.count_bug_db () in
              let q = parse_on db Fixtures.count_bug_query in
              let got =
                (Batched.run ~force ~mode ~engine (Core.catalog db) q)
                  .Batched.relation
              in
              Alcotest.(check bool) "knobs do not change the answer" true
                (Relation.equal_bag baseline got))
            [ Planner.Paper1987; Planner.Hybrid ])
        [ Exec.Plan.Tuple; Exec.Plan.Vectorized ])
    [ Planner.Auto; Planner.Force_nl; Planner.Force_merge; Planner.Force_hash ]

(* A multi-row scalar subquery is a runtime error in nested iteration;
   batched must raise the identical error, not return an arbitrary row. *)
let test_runtime_error_parity () =
  let db = Core.create_db ~buffer_pages:8 ~page_bytes:256 () in
  Core.define_table db "PARTS"
    [ ("PNUM", Value.Tint); ("QOH", Value.Tint) ]
    [ [ Value.Int 1; Value.Int 5 ] ];
  Core.define_table db "SUPPLY"
    [ ("PNUM", Value.Tint); ("QUAN", Value.Tint) ]
    [ [ Value.Int 1; Value.Int 5 ]; [ Value.Int 1; Value.Int 7 ] ];
  let sql =
    "SELECT PNUM FROM PARTS WHERE QOH = (SELECT QUAN FROM SUPPLY WHERE \
     SUPPLY.PNUM = PARTS.PNUM)"
  in
  let raised run =
    match run () with
    | exception Exec.Nested_iter.Runtime_error msg -> Some msg
    | _ -> None
  in
  let reference =
    raised (fun () -> Exec.Nested_iter.run (Core.catalog db) (parse_on db sql))
  in
  let batched =
    raised (fun () ->
        Core.run ~strategy:(Core.Batched Planner.Auto) db sql)
  in
  Alcotest.(check bool) "reference raises" true (reference <> None);
  Alcotest.(check (option string)) "same runtime error" reference batched

(* ------------------------------------------------------------------ *)
(* The ladder: rewrite refuses, batched answers                        *)
(* ------------------------------------------------------------------ *)

(* NOT IN (without --rewrite-not-in) is the canonical refused shape: the
   paper has no transformation, but batching needs none.  Batched must
   agree with nested iteration where the rewrite only refuses. *)
let test_refused_shape_batched_answers () =
  let sql =
    "SELECT PNUM FROM PARTS WHERE QOH NOT IN (SELECT QUAN FROM SUPPLY WHERE \
     SUPPLY.PNUM = PARTS.PNUM)"
  in
  let run strategy =
    Core.run ~strategy (Fixtures.count_bug_db ()) sql
  in
  (match run (Core.Transformed Planner.Auto) with
  | Error msg -> Alcotest.(check bool) "rewrite refuses" true (refusal msg)
  | Ok _ -> Alcotest.fail "expected the rewrite to refuse NOT IN");
  match (run (Core.Batched Planner.Auto), run Core.Nested_iteration) with
  | Ok b, Ok n ->
      let db = Fixtures.count_bug_db () in
      let q = Workload.Fixtures.parse_analyzed (Core.catalog db) sql in
      Alcotest.(check bool) "batched ≡ nested on the refused shape" true
        (Matrix.results_agree ~q ~reference:n.Core.result ~got:b.Core.result);
      Alcotest.(check bool) "batched is reported as batched" true
        (b.Core.via = Core.Via_batched)
  | Error e, _ | _, Error e -> Alcotest.fail e

(* Batched agrees with the *verified* transformed program where both
   answer — the rewrite path re-checked by the structural verifier, so the
   two independent implementations cross-check each other. *)
let test_batched_vs_verified_program () =
  let db = Fixtures.count_bug_db () in
  let q =
    Workload.Fixtures.parse_analyzed (Core.catalog db)
      Fixtures.count_bug_query
  in
  let program =
    match Core.transform db Fixtures.count_bug_query with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let transformed =
    Planner.run_program ~verify:true (Core.catalog db) program
  in
  Planner.drop_temps (Core.catalog db) program;
  let batched = run_batched db Fixtures.count_bug_query in
  Alcotest.(check bool) "batched ≡ verified transformed" true
    (Matrix.results_agree ~q
       ~reference:(Exec.Presentation.apply_order q transformed)
       ~got:batched.Batched.relation)

(* The execution record through Core.run: via and batch stats surface. *)
let test_core_run_surfaces_batches () =
  match
    Core.run
      ~strategy:(Core.Batched Planner.Auto)
      (Fixtures.count_bug_db ())
      Fixtures.count_bug_query
  with
  | Error e -> Alcotest.fail e
  | Ok e ->
      Alcotest.(check bool) "via batched" true (e.Core.via = Core.Via_batched);
      Alcotest.(check bool) "no transformation used" false
        e.Core.used_transformation;
      (match e.Core.batches with
      | [ b ] ->
          Alcotest.(check bool) "outer rows counted" true
            (b.Optimizer.Batched_nest.outer_rows > 0);
          Alcotest.(check bool) "bindings ≤ outer rows" true
            (b.Optimizer.Batched_nest.bindings
            <= b.Optimizer.Batched_nest.outer_rows)
      | bs -> Alcotest.failf "expected one batch record, got %d" (List.length bs));
      (* EXPLAIN ANALYZE shows the same numbers *)
      let text =
        match
          Core.explain_query ~analyze:true
            ~strategy:(Core.Batched Planner.Auto)
            (Fixtures.count_bug_db ())
            Fixtures.count_bug_query
        with
        | Ok t -> t
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check bool) "explain names the strategy" true
        (Astring.String.is_infix ~affix:"strategy: batched" text);
      Alcotest.(check bool) "explain shows binding batches" true
        (Astring.String.is_infix ~affix:"binding batches" text)

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "batched.properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_type_n; prop_type_a; prop_type_j; prop_type_ja; prop_deep ] );
    ( "batched.goldens",
      [
        Alcotest.test_case "duplicate and NULL keys dedup" `Quick
          test_dedup_counts;
        Alcotest.test_case "empty outer evaluates nothing" `Quick
          test_empty_outer;
        Alcotest.test_case "uncorrelated records no batches" `Quick
          test_uncorrelated_records_no_batches;
        Alcotest.test_case "correlation_keys" `Quick test_correlation_keys;
        Alcotest.test_case "static explain names keys only" `Quick
          test_static_explain;
        Alcotest.test_case "EXISTS and NOT EXISTS batch" `Quick
          test_exists_batching;
        Alcotest.test_case "free refs under shadowing" `Quick
          test_free_refs_shadowing;
        Alcotest.test_case "aggregate-argument correlation refuses" `Quick
          test_unbatchable_position_refuses;
        Alcotest.test_case "forced joins and engines agree" `Quick
          test_forced_joins_and_engines_agree;
        Alcotest.test_case "multi-row scalar subquery error parity" `Quick
          test_runtime_error_parity;
      ] );
    ( "batched.ladder",
      [
        Alcotest.test_case "rewrite refuses, batched answers" `Quick
          test_refused_shape_batched_answers;
        Alcotest.test_case "batched ≡ verified transformed program" `Quick
          test_batched_vs_verified_program;
        Alcotest.test_case "Core.run surfaces batch stats" `Quick
          test_core_run_surfaces_batches;
        Alcotest.test_case "Estimate prefers batched on duplicate skew"
          `Quick test_estimate_prefers_batched_on_skew;
        Alcotest.test_case "strategy_of_string round-trips" `Quick
          test_strategy_names;
      ] );
  ]
