(* Pager (LRU + counters), heap files and external sort. *)

module Value = Relalg.Value
module Row = Relalg.Row
module Schema = Relalg.Schema
module Relation = Relalg.Relation
open Storage

let int_schema = Schema.of_columns ~rel:"T" [ ("a", Value.Tint) ]

let row i = Row.of_list [ Value.Int i ]

let test_pager_counters () =
  let pager = Pager.create ~buffer_pages:2 ~page_bytes:64 () in
  let f = Pager.create_file pager in
  Pager.append_page pager f [| row 1 |];
  Pager.append_page pager f [| row 2 |];
  Pager.append_page pager f [| row 3 |];
  let s = Pager.stats pager in
  Alcotest.(check int) "three writes" 3 s.physical_writes;
  (* Pages 1 and 2 are resident (B=2); reading them is free, page 0 was
     evicted. *)
  ignore (Pager.read_page pager f 2);
  ignore (Pager.read_page pager f 0);
  Alcotest.(check int) "logical reads" 2 s.logical_reads;
  Alcotest.(check int) "one miss" 1 s.physical_reads

let test_pager_lru () =
  let pager = Pager.create ~buffer_pages:2 ~page_bytes:64 () in
  let f = Pager.create_file pager in
  for i = 0 to 2 do
    Pager.append_page pager f [| row i |]
  done;
  Pager.reset_stats pager;
  (* Resident: pages 1,2.  Access 1 (hit), then 0 (miss, evicts 2), then 2
     (miss). *)
  ignore (Pager.read_page pager f 1);
  ignore (Pager.read_page pager f 0);
  ignore (Pager.read_page pager f 2);
  ignore (Pager.read_page pager f 0);
  (* hit: 0 still resident *)
  let s = Pager.stats pager in
  Alcotest.(check int) "misses follow LRU" 2 s.physical_reads;
  Alcotest.(check int) "logical" 4 s.logical_reads

let test_pager_repeated_scan_fits () =
  (* An inner relation that fits in the pool costs its pages once no matter
     how many times it is re-scanned — the regime where nested iteration is
     competitive. *)
  let pager = Pager.create ~buffer_pages:8 ~page_bytes:64 () in
  let f = Pager.create_file pager in
  for i = 0 to 3 do
    Pager.append_page pager f [| row i |]
  done;
  Pager.reset_stats pager;
  for _ = 1 to 10 do
    for i = 0 to 3 do
      ignore (Pager.read_page pager f i)
    done
  done;
  let s = Pager.stats pager in
  Alcotest.(check int) "40 logical" 40 s.logical_reads;
  Alcotest.(check int) "0 misses" 0 s.physical_reads

let test_pager_repeated_scan_thrashes () =
  (* When the relation exceeds the pool, LRU + sequential scans miss on
     every page: N scans cost N*P reads — the paper's f(i)*Ni*Pj regime. *)
  let pager = Pager.create ~buffer_pages:2 ~page_bytes:64 () in
  let f = Pager.create_file pager in
  for i = 0 to 3 do
    Pager.append_page pager f [| row i |]
  done;
  Pager.reset_stats pager;
  for _ = 1 to 5 do
    for i = 0 to 3 do
      ignore (Pager.read_page pager f i)
    done
  done;
  let s = Pager.stats pager in
  Alcotest.(check int) "every read misses" 20 s.physical_reads

let test_pager_validation () =
  Alcotest.(check bool) "B >= 2 enforced" true
    (try
       ignore (Pager.create ~buffer_pages:1 ());
       false
     with Invalid_argument _ -> true);
  let pager = Pager.create () in
  let f = Pager.create_file pager in
  Alcotest.(check bool) "missing page" true
    (try
       ignore (Pager.read_page pager f 0);
       false
     with Invalid_argument _ -> true)

let test_heap_file_roundtrip () =
  let pager = Pager.create ~buffer_pages:4 ~page_bytes:32 () in
  let rel =
    Relation.make int_schema (List.init 37 row)
  in
  let heap = Heap_file.of_relation pager rel in
  Alcotest.(check int) "tuples" 37 (Heap_file.tuple_count heap);
  Alcotest.(check bool) "multiple pages" true (Heap_file.page_count heap > 1);
  let back = Heap_file.to_relation heap in
  Alcotest.(check bool) "round trip preserves rows & order" true
    (List.equal Row.equal (Relation.rows rel) (Relation.rows back))

let test_heap_file_partial_page () =
  let pager = Pager.create ~buffer_pages:4 ~page_bytes:1024 () in
  let heap = Heap_file.create pager int_schema in
  Heap_file.append heap (row 1);
  (* unflushed tail still counts as a page and scans see it *)
  Alcotest.(check int) "tail page counted" 1 (Heap_file.page_count heap);
  let back = Heap_file.to_relation heap in
  Alcotest.(check int) "scan flushes tail" 1 (Relation.cardinality back)

let test_heap_file_arity_check () =
  let pager = Pager.create () in
  let heap = Heap_file.create pager int_schema in
  Alcotest.(check bool) "arity mismatch" true
    (try
       Heap_file.append heap (Row.of_list Value.[ Int 1; Int 2 ]);
       false
     with Invalid_argument _ -> true)

let sort_values pager ?dedup xs =
  let rel = Relation.make int_schema (List.map row xs) in
  let heap = Heap_file.of_relation pager rel in
  let sorted = External_sort.sort pager ?dedup ~key:[ 0 ] heap in
  List.map
    (function
      | [ Value.Int i ] -> i
      | _ -> Alcotest.fail "bad row")
    (List.map Row.to_list (Relation.rows (Heap_file.to_relation sorted)))

let test_external_sort_small () =
  let pager = Pager.create ~buffer_pages:3 ~page_bytes:32 () in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ]
    (sort_values pager [ 4; 2; 5; 1; 3 ]);
  Alcotest.(check (list int)) "empty" [] (sort_values pager []);
  Alcotest.(check (list int)) "dedup"
    [ 1; 2; 3 ]
    (sort_values pager ~dedup:External_sort.Drop_duplicates [ 2; 1; 2; 3; 1 ])

let test_external_sort_multipass () =
  (* Force several merge passes: B=3 gives 2-way merges. *)
  let pager = Pager.create ~buffer_pages:3 ~page_bytes:16 () in
  let input = List.init 200 (fun i -> (i * 7919) mod 201) in
  let got = sort_values pager input in
  Alcotest.(check (list int)) "multipass sort" (List.sort compare input) got;
  let got_dedup =
    sort_values pager ~dedup:External_sort.Drop_duplicates input
  in
  Alcotest.(check (list int)) "multipass dedup"
    (List.sort_uniq compare input)
    got_dedup

let test_external_sort_io_shape () =
  (* Sorting P pages with B buffers should cost on the order of
     2*P*(1 + ceil(log_{B-1}(P/B))) page I/Os — linear passes over the data,
     not quadratic. *)
  let pager = Pager.create ~buffer_pages:3 ~page_bytes:16 () in
  let rel = Relation.make int_schema (List.init 256 (fun i -> row (255 - i))) in
  let heap = Heap_file.of_relation pager rel in
  let p = Heap_file.page_count heap in
  Pager.reset_stats pager;
  let sorted = External_sort.sort pager ~key:[ 0 ] heap in
  ignore sorted;
  let s = Pager.stats pager in
  let passes_upper = 2 + int_of_float (ceil (log (float p) /. log 2.)) in
  Alcotest.(check bool)
    (Printf.sprintf "io %d for %d pages is O(P log P)" (Pager.total_io s) p)
    true
    (Pager.total_io s <= 2 * p * passes_upper)

(* --- B-tree -------------------------------------------------------------- *)

let kv_schema = Schema.of_columns ~rel:"T" [ ("k", Value.Tint); ("v", Value.Tint) ]

let kv_heap pager rows =
  Heap_file.of_relation pager
    (Relation.make kv_schema
       (List.map (fun (k, v) -> Row.of_list [ Value.Int k; Value.Int v ]) rows))

let test_index_lookup () =
  let pager = Pager.create ~buffer_pages:4 ~page_bytes:48 () in
  let heap = kv_heap pager [ (5, 50); (1, 10); (5, 51); (3, 30); (1, 11) ] in
  let idx = Btree.build pager heap ~key_col:0 in
  Alcotest.(check int) "entries" 5 (Btree.entry_count idx);
  let values key =
    List.map (fun r -> Row.get r 1) (Btree.lookup_eq idx (Value.Int key))
    |> List.sort Value.compare
  in
  Alcotest.(check bool) "duplicates found" true
    (values 5 = [ Value.Int 50; Value.Int 51 ]);
  Alcotest.(check bool) "single" true (values 3 = [ Value.Int 30 ]);
  Alcotest.(check bool) "missing" true (values 99 = []);
  Alcotest.(check bool) "null probe matches nothing" true
    (Btree.lookup_eq idx Value.Null = [])

let test_index_null_keys_excluded () =
  let pager = Pager.create ~buffer_pages:4 ~page_bytes:48 () in
  let heap =
    Heap_file.of_relation pager
      (Relation.make kv_schema
         [ Row.of_list [ Value.Null; Value.Int 1 ];
           Row.of_list [ Value.Int 2; Value.Int 2 ] ])
  in
  let idx = Btree.build pager heap ~key_col:0 in
  Alcotest.(check int) "null keys not indexed" 1 (Btree.entry_count idx)

let test_index_build_costs_io () =
  (* Construction used to hide behind [without_accounting]; now the heap
     scan, sort runs and tree pages are all charged and recorded. *)
  let pager = Pager.create ~buffer_pages:2 ~page_bytes:32 () in
  let heap = kv_heap pager (List.init 64 (fun i -> (i, i))) in
  Pager.reset_stats pager;
  let idx = Btree.build pager heap ~key_col:0 in
  let s = Pager.stats pager in
  Alcotest.(check bool) "build charged" true (s.physical_reads > 0);
  Alcotest.(check bool) "build writes charged" true (s.physical_writes > 0);
  let b = Btree.build_io idx in
  Alcotest.(check int) "build_io records reads" s.physical_reads
    b.Pager.physical_reads;
  Pager.reset_stats pager;
  ignore (Btree.lookup_eq idx (Value.Int 40));
  let s = Pager.stats pager in
  Alcotest.(check bool) "probe charged" true (s.logical_reads > 0)

let test_btree_multi_level () =
  (* Tiny pages force real interior levels; every key must still resolve
     with O(height) descents. *)
  let pager = Pager.create ~buffer_pages:8 ~page_bytes:48 () in
  let n = 500 in
  let heap =
    kv_heap pager (List.init n (fun i -> (((i * 7919) mod n), i)))
  in
  let idx = Btree.build pager heap ~key_col:0 in
  Alcotest.(check int) "entries" n (Btree.entry_count idx);
  Alcotest.(check bool) "multi-level" true (Btree.height idx >= 2);
  Alcotest.(check bool) "interior pages exist" true
    (Btree.pages idx > Btree.leaf_page_count idx);
  for k = 0 to n - 1 do
    match Btree.lookup_eq idx (Value.Int k) with
    | [ _ ] -> ()
    | rows ->
        Alcotest.failf "key %d: expected 1 row, got %d" k (List.length rows)
  done

let test_btree_range () =
  let pager = Pager.create ~buffer_pages:8 ~page_bytes:48 () in
  let heap = kv_heap pager (List.init 100 (fun i -> (i, i * 10))) in
  let idx = Btree.build pager heap ~key_col:0 in
  let collect ?lo ?hi () =
    let next = Btree.range idx ?lo ?hi () in
    let rec go acc =
      match next () with
      | Some r -> go (Row.get r 0 :: acc)
      | None -> List.rev acc
    in
    go []
  in
  let ints xs = List.map (fun i -> Value.Int i) xs in
  Alcotest.(check bool) "closed range" true
    (collect ~lo:(Value.Int 10, true) ~hi:(Value.Int 14, true) ()
    = ints [ 10; 11; 12; 13; 14 ]);
  Alcotest.(check bool) "open lo" true
    (collect ~lo:(Value.Int 10, false) ~hi:(Value.Int 12, true) ()
    = ints [ 11; 12 ]);
  Alcotest.(check bool) "open hi" true
    (collect ~lo:(Value.Int 97, true) ~hi:(Value.Int 99, false) ()
    = ints [ 97; 98 ]);
  Alcotest.(check bool) "unbounded hi reaches end" true
    (collect ~lo:(Value.Int 95, true) () = ints [ 95; 96; 97; 98; 99 ]);
  Alcotest.(check bool) "unbounded lo starts at min" true
    (collect ~hi:(Value.Int 3, true) () = ints [ 0; 1; 2; 3 ]);
  Alcotest.(check int) "full scan via range" 100
    (List.length (collect ()));
  Alcotest.(check bool) "null bound matches nothing" true
    (collect ~lo:(Value.Null, true) () = [])

let test_btree_empty () =
  let pager = Pager.create ~buffer_pages:4 ~page_bytes:48 () in
  let heap = kv_heap pager [] in
  let idx = Btree.build pager heap ~key_col:0 in
  Alcotest.(check int) "no entries" 0 (Btree.entry_count idx);
  Alcotest.(check bool) "probe on empty" true
    (Btree.lookup_eq idx (Value.Int 1) = []);
  let next = Btree.range idx () in
  Alcotest.(check bool) "range on empty" true (next () = None)

(* --- Stats --------------------------------------------------------------- *)

let test_stats_columns () =
  let rel =
    Relation.of_values ~rel:"T"
      [ ("K", Value.Tint); ("S", Value.Tstr) ]
      Value.
        [
          [ Int 1; Str "a" ]; [ Int 1; Str "b" ]; [ Int 3; Null ];
          [ Int 7; Str "a" ];
        ]
  in
  let stats = Stats.of_relation rel in
  Alcotest.(check int) "tuples" 4 (Stats.tuples stats);
  let k = Stats.column stats 0 in
  Alcotest.(check int) "distinct K" 3 k.Stats.distinct;
  Alcotest.(check int) "nulls K" 0 k.Stats.nulls;
  Alcotest.(check bool) "min K" true (k.Stats.min = Some (Value.Int 1));
  Alcotest.(check bool) "max K" true (k.Stats.max = Some (Value.Int 7));
  let s = Stats.column stats 1 in
  Alcotest.(check int) "distinct S" 2 s.Stats.distinct;
  Alcotest.(check int) "nulls S" 1 s.Stats.nulls

let test_stats_selectivity () =
  let c =
    { Stats.distinct = 10; nulls = 0; min = Some (Value.Int 0);
      max = Some (Value.Int 100) }
  in
  Alcotest.(check bool) "eq = 1/distinct" true
    (Stats.literal_selectivity c Sql.Ast.Eq (Value.Int 5) = 0.1);
  let lt = Stats.literal_selectivity c Sql.Ast.Lt (Value.Int 25) in
  Alcotest.(check bool) "range interpolates" true (lt > 0.2 && lt < 0.3);
  let gt = Stats.literal_selectivity c Sql.Ast.Gt (Value.Int 25) in
  Alcotest.(check bool) "complement" true (Float.abs (lt +. gt -. 1.) < 0.01);
  Alcotest.(check bool) "clamped away from 0" true
    (Stats.literal_selectivity c Sql.Ast.Lt (Value.Int (-5)) >= 0.05);
  let empty = { Stats.distinct = 0; nulls = 0; min = None; max = None } in
  Alcotest.(check bool) "no stats falls back" true
    (Stats.literal_selectivity empty Sql.Ast.Lt (Value.Int 1)
    = Stats.default_range_selectivity);
  Alcotest.(check bool) "join selectivity" true
    (Stats.join_selectivity c c = 0.1)

let test_stats_io_free () =
  (* Registration (including stats collection) must not charge the I/O
     counters beyond the heap writes themselves. *)
  let pager = Pager.create ~buffer_pages:4 ~page_bytes:32 () in
  let catalog = Catalog.create pager in
  Pager.reset_stats pager;
  Catalog.register_relation catalog "T"
    (Relation.make int_schema (List.init 50 row));
  let s = Pager.stats pager in
  Alcotest.(check int) "no reads charged for stats" 0 s.physical_reads

let test_catalog_basics () =
  let pager = Pager.create () in
  let catalog = Catalog.create pager in
  Catalog.register_relation catalog "T"
    (Relation.make int_schema (List.init 5 row));
  Alcotest.(check bool) "mem" true (Catalog.mem catalog "T");
  Alcotest.(check int) "tuples" 5 (Catalog.tuples catalog "T");
  Alcotest.(check bool) "lookup" true (Catalog.lookup catalog "T" <> None);
  Alcotest.(check bool) "unknown lookup" true (Catalog.lookup catalog "X" = None);
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Catalog.relation catalog "X");
       false
     with Catalog.Unknown_table "X" -> true);
  Alcotest.(check bool) "dup register" true
    (try
       Catalog.register_relation catalog "T" (Relation.make int_schema []);
       false
     with Invalid_argument _ -> true);
  let t1 = Catalog.fresh_temp_name catalog in
  let t2 = Catalog.fresh_temp_name catalog in
  Alcotest.(check bool) "fresh names differ" true (t1 <> t2);
  Catalog.drop catalog "T";
  Alcotest.(check bool) "dropped" false (Catalog.mem catalog "T")

let test_catalog_sorted_on () =
  let pager = Pager.create () in
  let catalog = Catalog.create pager in
  Catalog.register_relation ~sorted_on:[ 0 ] catalog "T"
    (Relation.make int_schema (List.init 3 row));
  Alcotest.(check bool) "sorted metadata" true
    (Catalog.sorted_on catalog "T" = Some [ 0 ])

(* Property: external sort equals in-memory sort, with and without dedup. *)
let prop_sort_matches_list_sort =
  QCheck2.Test.make ~name:"external sort = List.sort" ~count:100
    QCheck2.Gen.(list_size (int_range 0 300) (int_range 0 50))
    (fun xs ->
      let pager = Storage.Pager.create ~buffer_pages:3 ~page_bytes:16 () in
      sort_values pager xs = List.sort compare xs
      && sort_values pager ~dedup:External_sort.Drop_duplicates xs
         = List.sort_uniq compare xs)

let suites =
  [
    ( "storage.pager",
      [
        Alcotest.test_case "counters" `Quick test_pager_counters;
        Alcotest.test_case "lru eviction" `Quick test_pager_lru;
        Alcotest.test_case "rescan fits in pool" `Quick
          test_pager_repeated_scan_fits;
        Alcotest.test_case "rescan thrashes" `Quick
          test_pager_repeated_scan_thrashes;
        Alcotest.test_case "validation" `Quick test_pager_validation;
      ] );
    ( "storage.heap_file",
      [
        Alcotest.test_case "round trip" `Quick test_heap_file_roundtrip;
        Alcotest.test_case "partial page" `Quick test_heap_file_partial_page;
        Alcotest.test_case "arity check" `Quick test_heap_file_arity_check;
      ] );
    ( "storage.external_sort",
      [
        Alcotest.test_case "small inputs" `Quick test_external_sort_small;
        Alcotest.test_case "multipass" `Quick test_external_sort_multipass;
        Alcotest.test_case "io shape" `Quick test_external_sort_io_shape;
        QCheck_alcotest.to_alcotest prop_sort_matches_list_sort;
      ] );
    ( "storage.btree",
      [
        Alcotest.test_case "lookup" `Quick test_index_lookup;
        Alcotest.test_case "null keys excluded" `Quick
          test_index_null_keys_excluded;
        Alcotest.test_case "build and probe I/O accounting" `Quick
          test_index_build_costs_io;
        Alcotest.test_case "multi-level tree" `Quick test_btree_multi_level;
        Alcotest.test_case "range probes" `Quick test_btree_range;
        Alcotest.test_case "empty relation" `Quick test_btree_empty;
      ] );
    ( "storage.stats",
      [
        Alcotest.test_case "column stats" `Quick test_stats_columns;
        Alcotest.test_case "selectivity" `Quick test_stats_selectivity;
        Alcotest.test_case "collection is I/O-free" `Quick test_stats_io_free;
      ] );
    ( "storage.catalog",
      [
        Alcotest.test_case "basics" `Quick test_catalog_basics;
        Alcotest.test_case "sorted_on metadata" `Quick test_catalog_sorted_on;
      ] );
  ]
