(* Index access paths under adversarial data: randomized equivalence of
   the B-tree operators against their index-free counterparts.

   - IndexScan (equality and range probes) must equal Filter∘Scan on the
     same predicate, on both engines, and deliver key order.
   - Index nested-loop join must equal hash and sort-merge joins on the
     same equi-condition, on both engines.
   - The probe-based paged nested enumeration (Sysr_iteration) with a
     B-tree on every column must equal the in-memory oracle.

   Data is deliberately hostile: NULL-dense join columns (a B-tree stores
   no NULL keys — rows must be rejected by the predicate, not lost by the
   access path), duplicate-skewed keys (tiny key_range), and empty
   relations. *)

module Relation = Relalg.Relation
module Schema = Relalg.Schema
module Value = Relalg.Value
module Catalog = Storage.Catalog
module G = Workload.Gen
module Plan = Exec.Plan
module F = Workload.Fixtures

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

(* A catalog whose SUPPLY is NULL-dense and duplicate-skewed (and
   sometimes empty), with a B-tree on the join column. *)
let supply_catalog rng =
  let n_supply = G.int_in rng 0 30 in
  let null_pct = G.int_in rng 0 40 in
  let key_range = G.int_in rng 1 4 in
  let catalog =
    G.parts_supply_catalog ~null_pct rng ~n_parts:(G.int_in rng 0 10)
      ~n_supply ~key_range
  in
  Catalog.create_index catalog "SUPPLY" ~column:"PNUM";
  catalog

let run_plan engine catalog plan =
  match engine with
  | Plan.Tuple -> Plan.run catalog plan
  | Plan.Vectorized -> Plan.run_vec catalog plan

let pcol c : Sql.Ast.col_ref = { table = Some "SUPPLY"; column = c }

(* --- IndexScan = Filter(Scan) --------------------------------------- *)

let bounds_and_pred rng v =
  let lit = Sql.Ast.Lit (Value.Int v) in
  let cmp op = Sql.Ast.Cmp (Sql.Ast.Col (pcol "PNUM"), op, lit) in
  match G.int_in rng 0 4 with
  | 0 -> ((Some (Value.Int v, true), Some (Value.Int v, true)), cmp Sql.Ast.Eq)
  | 1 -> ((None, Some (Value.Int v, false)), cmp Sql.Ast.Lt)
  | 2 -> ((None, Some (Value.Int v, true)), cmp Sql.Ast.Le)
  | 3 -> ((Some (Value.Int v, false), None), cmp Sql.Ast.Gt)
  | _ -> ((Some (Value.Int v, true), None), cmp Sql.Ast.Ge)

let key_ordered rel =
  let schema = Relation.schema rel in
  let k = Schema.find schema "PNUM" in
  let rec go = function
    | a :: (b :: _ as rest) ->
        (match (Relalg.Row.get a k, Relalg.Row.get b k) with
        | Value.Null, _ | _, Value.Null -> false (* NULL keys never stored *)
        | va, vb -> Value.compare va vb <= 0 && go rest)
    | _ -> true
  in
  go (Relation.rows rel)

let prop_index_scan =
  QCheck2.Test.make ~name:"IndexScan = Filter(Scan), both engines, key order"
    ~count:200 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let catalog = supply_catalog rng in
      let (lo, hi), pred = bounds_and_pred rng (G.int_in rng 0 5) in
      let indexed =
        Plan.Index_scan
          { table = "SUPPLY"; alias = "SUPPLY"; column = "PNUM"; lo; hi }
      in
      let plain = Plan.Filter ([ pred ], Plan.Scan "SUPPLY") in
      let a = run_plan Plan.Tuple catalog indexed in
      let b = run_plan Plan.Tuple catalog plain in
      let av = run_plan Plan.Vectorized catalog indexed in
      Relation.equal_bag a b && Relation.equal_bag a av && key_ordered a)

(* --- index nested-loop join = hash = merge --------------------------- *)

let join method_ =
  (* sort-merge consumes key-ordered inputs (the planner inserts the
     Sorts); the other methods take the bare scans *)
  let left, right =
    match method_ with
    | Plan.Sort_merge ->
        ( Plan.Sort ([ { Sql.Ast.table = Some "PARTS"; column = "PNUM" } ],
            Plan.Scan "PARTS"),
          Plan.Sort ([ pcol "PNUM" ], Plan.Scan "SUPPLY") )
    | _ -> (Plan.Scan "PARTS", Plan.Scan "SUPPLY")
  in
  Plan.Join
    {
      method_;
      kind = Plan.Inner;
      cond =
        [ ({ table = Some "PARTS"; column = "PNUM" }, Sql.Ast.Eq, pcol "PNUM") ];
      residual = [];
      left;
      right;
    }

let prop_index_join =
  QCheck2.Test.make
    ~name:"index NL join = hash = merge over NULL/dup/empty data" ~count:200
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let catalog = supply_catalog rng in
      let inl = run_plan Plan.Tuple catalog (join Plan.Index_nl) in
      let hash = run_plan Plan.Tuple catalog (join Plan.Hash) in
      let merge = run_plan Plan.Tuple catalog (join Plan.Sort_merge) in
      let inl_vec = run_plan Plan.Vectorized catalog (join Plan.Index_nl) in
      Relation.equal_bag inl hash
      && Relation.equal_bag inl merge
      && Relation.equal_bag inl inl_vec)

(* --- probe-based nested enumeration = in-memory oracle --------------- *)

let index_everything catalog =
  List.iter
    (fun name ->
      match Catalog.lookup catalog name with
      | None -> ()
      | Some schema ->
          List.iter
            (fun (c : Schema.column) ->
              Catalog.create_index catalog name ~column:c.Schema.name)
            (Schema.columns schema))
    (Catalog.table_names catalog)

let prop_probed_enumeration =
  QCheck2.Test.make
    ~name:"Sysr probes (index on every column) = in-memory oracle" ~count:150
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let null_pct = G.int_in rng 0 30 in
      let catalog =
        G.parts_supply_catalog ~null_pct rng ~n_parts:(G.int_in rng 1 10)
          ~n_supply:(G.int_in rng 0 20) ~key_range:(G.int_in rng 1 6)
      in
      index_everything catalog;
      let text =
        (match G.int_in rng 0 3 with
        | 0 -> G.n_query
        | 1 -> G.a_query
        | 2 -> G.j_query
        | _ -> G.ja_query)
          rng
      in
      let q = F.parse_analyzed catalog text in
      let expected = Exec.Nested_iter.run catalog q in
      let got = Exec.Sysr_iteration.run catalog q in
      if Relation.equal_bag expected got then true
      else begin
        Fmt.epr "@.seed %d query %s@.oracle:@.%a@.probed:@.%a@." seed text
          Relation.pp expected Relation.pp got;
        false
      end)

let suites =
  [
    ( "index.properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_index_scan; prop_index_join; prop_probed_enumeration ] );
  ]
