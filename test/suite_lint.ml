(* The analysis library: diagnostics, correlation graph, the lint pass
   (golden diagnostics for the paper's worked examples) and the rewrite
   verifier (passes on every NEST-G/NEST-JA2 program, fails on Kim's buggy
   NEST-JA output and on deliberately mutated programs). *)

module Ast = Sql.Ast
module Relation = Relalg.Relation
module Catalog = Storage.Catalog
module F = Workload.Fixtures
module G = Workload.Gen
module D = Analysis.Diagnostics
module Lint = Analysis.Lint
module Graph = Analysis.Correlation_graph

let classify sub =
  Optimizer.Classify.name (Optimizer.Classify.classify_block sub)

let column_stats catalog rel col =
  match Catalog.lookup catalog rel with
  | None -> None
  | Some schema -> (
      match Relalg.Schema.find_opt schema col with
      | Some i ->
          let cs = Storage.Stats.column (Catalog.stats catalog rel) i in
          Some (cs.Storage.Stats.distinct, Catalog.tuples catalog rel)
      | None -> None
      | exception Relalg.Schema.Ambiguous _ -> None)

(* Lint a source text against a fixture catalog, with the optimizer as
   classification oracle and real catalog statistics. *)
let lint catalog text =
  Lint.lint_source ~classify
    ~column_stats:(column_stats catalog)
    ~lookup:(Catalog.lookup catalog) text

let codes diags = List.map (fun (d : D.t) -> d.D.code) diags

let check_codes msg expected diags =
  Alcotest.(check (list string)) msg expected (codes diags)

(* --- golden diagnostics on the paper's worked examples ------------------ *)

let test_kim_examples_clean () =
  let kim = F.kim_catalog () in
  List.iteri
    (fun i text ->
      check_codes (Printf.sprintf "example %d clean" (i + 1)) []
        (lint kim text))
    [ F.example1; F.example2; F.example3; F.example4 ];
  (* Example 5 is type-JA on P.CITY, which holds duplicates in the fixture:
     the sec.-5.4 susceptibility warning fires (and nothing else). *)
  check_codes "example 5 = NQ003" [ "NQ003" ] (lint kim F.example5)

let test_count_bug_query () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  let diags = lint catalog F.query_q2 in
  check_codes "Q2 = NQ001" [ "NQ001" ] diags;
  let d = List.hd diags in
  Alcotest.(check bool) "NQ001 span known" true (Ast.span_known d.D.span);
  (* The span is the inner block's: it starts at the subquery's SELECT. *)
  let expected_col =
    match Astring.String.find_sub ~sub:"(SELECT" F.query_q2 with
    | Some i -> i + 2 (* 1-based, one past the paren *)
    | None -> Alcotest.fail "fixture changed"
  in
  Alcotest.(check int) "NQ001 span column" expected_col
    d.D.span.Ast.sp_start.Ast.col;
  Alcotest.(check string) "NQ001 severity" "warning"
    (D.severity_name d.D.severity)

let test_neq_query () =
  let catalog = F.parts_supply_catalog F.Neq_bug in
  let diags = lint catalog F.query_q5 in
  check_codes "Q5 = NQ002" [ "NQ002" ] diags;
  Alcotest.(check bool) "NQ002 span known" true
    (Ast.span_known (List.hd diags).D.span)

let test_duplicates_query () =
  let catalog = F.parts_supply_catalog F.Duplicates in
  (* dup_parts: 5 rows, 3 distinct PNUM — both the COUNT-bug and the
     duplicate-join-column warnings apply. *)
  check_codes "duplicates Q2 = NQ001+NQ003" [ "NQ001"; "NQ003" ]
    (lint catalog F.query_q2);
  (* Same query on the duplicate-free Kiessling data: no NQ003. *)
  check_codes "count-bug Q2 has no NQ003" [ "NQ001" ]
    (lint (F.parts_supply_catalog F.Count_bug) F.query_q2)

let test_ja2_rewrites_lint_clean () =
  (* The NEST-JA2 output of the three bug queries is flat — linting each
     definition and the main query yields nothing (the warnings are
     properties of the *nested* original). *)
  List.iter
    (fun (variant, text) ->
      let catalog = F.parts_supply_catalog variant in
      let q = F.parse_analyzed catalog text in
      let program =
        Optimizer.Nest_g.transform
          ~fresh:(fun () -> Catalog.fresh_temp_name catalog)
          q
      in
      (* Register temp schemas so linting later defs resolves temp refs. *)
      let temp_schemas = ref [] in
      let lookup name =
        match List.assoc_opt name !temp_schemas with
        | Some s -> Some s
        | None -> Catalog.lookup catalog name
      in
      List.iter
        (fun ({ Optimizer.Program.name; def } : Optimizer.Program.temp) ->
          check_codes ("temp " ^ name ^ " lints clean") []
            (Lint.lint ~classify def);
          temp_schemas :=
            (name, Sql.Analyzer.output_schema ~lookup ~rel:name def)
            :: !temp_schemas)
        program.Optimizer.Program.temps;
      check_codes "main lints clean" []
        (Lint.lint ~classify program.Optimizer.Program.main))
    [
      (F.Count_bug, F.query_q2);
      (F.Neq_bug, F.query_q5);
      (F.Duplicates, F.query_q2);
    ]

(* --- hygiene and applicability checks ----------------------------------- *)

let test_unused_alias_and_constant_false () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  check_codes "unused alias + constant false" [ "NQ004"; "NQ005" ]
    (lint catalog "SELECT PARTS.PNUM FROM PARTS, SUPPLY WHERE 1 = 2");
  check_codes "self-comparison never true" [ "NQ005" ]
    (lint catalog "SELECT PNUM FROM PARTS WHERE PNUM != PNUM");
  (* An alias used only through a correlation does not count as unused. *)
  check_codes "correlated-into alias is used" []
    (lint catalog
       "SELECT PNUM FROM PARTS WHERE QOH IN (SELECT QUAN FROM SUPPLY WHERE \
        SUPPLY.PNUM = PARTS.PNUM)")

let test_no_rewrite_available () =
  let kim = F.kim_catalog () in
  let eq_all =
    lint kim "SELECT SNO FROM S WHERE SNO = ALL (SELECT SNO FROM SP)"
  in
  check_codes "= ALL is NQ007" [ "NQ007" ] eq_all;
  Alcotest.(check string) "NQ007 is info" "info"
    (D.severity_name (List.hd eq_all).D.severity);
  check_codes "NOT IN is NQ007" [ "NQ007" ]
    (lint kim "SELECT SNO FROM S WHERE SNO NOT IN (SELECT SNO FROM SP)")

let test_multiplicity_sensitive_merge () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  (* A correlated non-aggregate subquery below COUNT: NEST-N-J's merge
     would change the multiplicity, so the planner refuses (Safe) and lint
     warns. *)
  check_codes "NQ008 under COUNT" [ "NQ008" ]
    (lint catalog
       "SELECT COUNT(PNUM) FROM PARTS WHERE QOH IN (SELECT QUAN FROM SUPPLY \
        WHERE SUPPLY.PNUM = PARTS.PNUM)");
  (* MAX is duplicate-insensitive: no warning. *)
  check_codes "no NQ008 under MAX" []
    (lint catalog
       "SELECT MAX(PNUM) FROM PARTS WHERE QOH IN (SELECT QUAN FROM SUPPLY \
        WHERE SUPPLY.PNUM = PARTS.PNUM)")

let test_classification_cross_check () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  let q = F.parse_analyzed catalog F.query_q2 in
  (* A lying oracle must be caught (error severity). *)
  let diags = Lint.lint ~classify:(fun _ -> "type-N") q in
  Alcotest.(check bool) "NQ006 fires" true
    (List.mem "NQ006" (codes diags));
  Alcotest.(check bool) "NQ006 is an error" true (D.has_errors diags);
  (* The real oracle agrees everywhere in the fixture corpus. *)
  List.iter
    (fun text ->
      let q = F.parse_analyzed catalog text in
      Alcotest.(check bool) ("oracle agrees: " ^ text) false
        (List.mem "NQ006" (codes (Lint.lint ~classify q))))
    [ F.query_q2; F.query_q5; F.query_q2_count_star ]

(* --- parse / analyzer diagnostics --------------------------------------- *)

let test_parse_error_diag () =
  let catalog = F.kim_catalog () in
  let diags = lint catalog "SELEC SNO FROM S" in
  check_codes "NQ100" [ "NQ100" ] diags;
  Alcotest.(check bool) "parse errors are errors" true (D.has_errors diags)

let test_analyzer_collects_all () =
  let catalog = F.kim_catalog () in
  (* Three independent resolution errors in one query: all reported. *)
  let diags =
    lint catalog "SELECT NOPE, WRONG FROM S, NOSUCH WHERE ALSO = 1"
  in
  Alcotest.(check bool) "several NQ101" true (List.length diags >= 3);
  List.iter
    (fun (d : D.t) -> Alcotest.(check string) "all NQ101" "NQ101" d.D.code)
    diags

let test_multiple_statements () =
  let catalog = F.parts_supply_catalog F.Duplicates in
  (* Two statements: the flat one is clean, Q2 draws its two warnings. *)
  let diags = lint catalog ("SELECT PNUM FROM PARTS;\n" ^ F.query_q2 ^ ";") in
  check_codes "second statement only" [ "NQ001"; "NQ003" ] diags;
  List.iter
    (fun (d : D.t) ->
      Alcotest.(check int) "span on line 2" 2 d.D.span.Ast.sp_start.Ast.line)
    diags

(* --- correlation graph --------------------------------------------------- *)

let test_correlation_graph () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  let q = F.parse_analyzed catalog F.query_q2 in
  let g = Graph.build q in
  Alcotest.(check int) "two blocks" 2 (List.length g.Graph.nodes);
  Alcotest.(check int) "one correlation edge" 1 (List.length g.Graph.edges);
  let e = List.hd g.Graph.edges in
  Alcotest.(check string) "edge alias" "PARTS" e.Graph.alias;
  Alcotest.(check int) "edge inner" 1 e.Graph.inner;
  Alcotest.(check int) "edge outer" 0 e.Graph.outer;
  (match e.Graph.uses with
  | [ u ] ->
      Alcotest.(check string) "use column" "PNUM" u.Graph.column;
      Alcotest.(check bool) "use op is =" true (u.Graph.op = Some Ast.Eq)
  | _ -> Alcotest.fail "expected one use");
  let inner = Graph.node g 1 in
  Alcotest.(check int) "inner depth" 1 inner.Graph.depth;
  Alcotest.(check bool) "inner correlated" true (Graph.is_correlated_block g 1);
  Alcotest.(check bool) "outer not correlated" false
    (Graph.is_correlated_block g 0);
  Alcotest.(check bool) "json renders" true
    (String.length (Graph.to_json g) > 0)

(* --- rewrite verifier ---------------------------------------------------- *)

let verify catalog temps main =
  Analysis.Rewrite_verifier.verify ~lookup:(Catalog.lookup catalog) ~temps
    ~main

let nest_ja_program catalog text ~temp_name =
  let q = F.parse_analyzed catalog text in
  let pred =
    match q.Ast.where with [ p ] -> p | _ -> Alcotest.fail "shape"
  in
  let temp, rewritten = Optimizer.Nest_ja.transform q pred ~temp_name in
  ( [ (temp.Optimizer.Program.name, temp.Optimizer.Program.def) ],
    rewritten )

let test_verifier_rejects_kim_ja_count () =
  (* Kim's buggy NEST-JA on Q2: grouped COUNT without the outer join. *)
  let catalog = F.parts_supply_catalog F.Count_bug in
  let temps, main = nest_ja_program catalog F.query_q2 ~temp_name:"TEMPP" in
  check_codes "buggy NEST-JA(Q2) = NQ904" [ "NQ904" ]
    (verify catalog temps main)

let test_verifier_rejects_kim_ja_neq () =
  (* Kim's buggy NEST-JA on Q5: the grouped key is range-joined back. *)
  let catalog = F.parts_supply_catalog F.Neq_bug in
  let temps, main = nest_ja_program catalog F.query_q5 ~temp_name:"TEMP5" in
  check_codes "buggy NEST-JA(Q5) = NQ903" [ "NQ903" ]
    (verify catalog temps main)

let nest_g_program catalog text =
  let q = F.parse_analyzed catalog text in
  Optimizer.Nest_g.transform
    ~fresh:(fun () -> Catalog.fresh_temp_name catalog)
    q

let test_verifier_passes_ja2 () =
  List.iter
    (fun (variant, text) ->
      let catalog = F.parts_supply_catalog variant in
      let program = nest_g_program catalog text in
      check_codes ("NEST-JA2 verifies: " ^ text) []
        (Optimizer.Planner.verify_program catalog program))
    [
      (F.Count_bug, F.query_q2);
      (F.Neq_bug, F.query_q5);
      (F.Duplicates, F.query_q2);
      (F.Count_bug, F.query_q2_count_star);
    ]

(* Mutations of a sound NEST-JA2 program, each tripping one invariant. *)
let test_verifier_mutations () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  let program = nest_g_program catalog F.query_q2 in
  let temps =
    List.map
      (fun ({ Optimizer.Program.name; def } : Optimizer.Program.temp) ->
        (name, def))
      program.Optimizer.Program.temps
  in
  let main = program.Optimizer.Program.main in
  (* Sanity: unmutated program is clean. *)
  check_codes "unmutated clean" [] (verify catalog temps main);
  (* NQ901: reference a column no relation provides. *)
  let bad_main =
    {
      main with
      Ast.where =
        Ast.Cmp (Ast.Col (Ast.col ~table:"PARTS" "NOPE"), Ast.Eq,
                 Ast.Lit (Relalg.Value.Int 1))
        :: main.Ast.where;
    }
  in
  Alcotest.(check bool) "dangling ref = NQ901" true
    (List.mem "NQ901" (codes (verify catalog temps bad_main)));
  (* NQ900: a nested predicate survives in the main query. *)
  let nested_main =
    {
      main with
      Ast.where =
        Ast.Exists
          (Ast.query
             ~select:[ Ast.Sel_col (Ast.col ~table:"SUPPLY" "PNUM") ]
             ~from:[ Ast.from "SUPPLY" ] ~where:[] ())
        :: main.Ast.where;
    }
  in
  Alcotest.(check bool) "nested predicate = NQ900" true
    (List.mem "NQ900" (codes (verify catalog temps nested_main)));
  (* NQ906: drop the main query so the last temp is never consumed. *)
  let flat_unrelated =
    F.parse_analyzed catalog "SELECT PNUM FROM PARTS"
  in
  Alcotest.(check bool) "dead temp = NQ906" true
    (List.mem "NQ906" (codes (verify catalog temps flat_unrelated)));
  (* NQ904/NQ905: strip the outer join from the grouped COUNT temp, or
     count a preserved-side column instead. *)
  let mutate_temp f =
    List.map
      (fun (name, (def : Ast.query)) ->
        if def.Ast.group_by <> [] then (name, f def) else (name, def))
      temps
  in
  let no_outer =
    mutate_temp (fun def ->
        {
          def with
          Ast.where =
            List.map
              (function
                | Ast.Cmp_outer (a, op, b) -> Ast.Cmp (a, op, b)
                | p -> p)
              def.Ast.where;
        })
  in
  Alcotest.(check bool) "stripped outer join = NQ904" true
    (List.mem "NQ904" (codes (verify catalog no_outer main)));
  let count_star =
    mutate_temp (fun def ->
        {
          def with
          Ast.select =
            List.map
              (function
                | Ast.Sel_agg (Ast.Count _) -> Ast.Sel_agg Ast.Count_star
                | item -> item)
              def.Ast.select;
        })
  in
  Alcotest.(check bool) "COUNT(*) in outer-join temp = NQ905" true
    (List.mem "NQ905" (codes (verify catalog count_star main)))

(* --- properties ---------------------------------------------------------- *)

let seed_gen = QCheck2.Gen.int_range 0 100_000

(* Every generated nested query produces only warnings/info, never lint
   errors: the classification cross-check holds and analysis is clean. *)
let prop_lint_no_errors =
  QCheck2.Test.make ~name:"generated queries never lint as errors" ~count:150
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n_parts = G.int_in rng 1 10 in
      let n_supply = G.int_in rng 0 20 in
      let key_range = G.int_in rng 1 6 in
      let catalog =
        G.parts_supply_catalog rng ~n_parts ~n_supply ~key_range
      in
      let text =
        (List.nth
           [ G.n_query; G.a_query; G.j_query; G.ja_query; G.deep_query ]
           (G.int_in rng 0 4))
          rng
      in
      not (D.has_errors (lint catalog text)))

(* Every transformable generated query verifies clean. *)
let prop_transforms_verify =
  QCheck2.Test.make ~name:"NEST-G programs pass the rewrite verifier"
    ~count:150 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n_parts = G.int_in rng 1 10 in
      let n_supply = G.int_in rng 0 20 in
      let key_range = G.int_in rng 1 6 in
      let catalog =
        G.parts_supply_catalog rng ~n_parts ~n_supply ~key_range
      in
      let text =
        (List.nth
           [ G.n_query; G.a_query; G.j_query; G.ja_query; G.deep_query ]
           (G.int_in rng 0 4))
          rng
      in
      match nest_g_program catalog text with
      | program -> Optimizer.Planner.verify_program catalog program = []
      | exception Optimizer.Nest_g.Unsupported _ -> true)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "analysis.lint",
      [
        Alcotest.test_case "Kim examples golden" `Quick
          test_kim_examples_clean;
        Alcotest.test_case "COUNT-bug query (NQ001)" `Quick
          test_count_bug_query;
        Alcotest.test_case "non-equality query (NQ002)" `Quick test_neq_query;
        Alcotest.test_case "duplicates query (NQ003)" `Quick
          test_duplicates_query;
        Alcotest.test_case "NEST-JA2 rewrites lint clean" `Quick
          test_ja2_rewrites_lint_clean;
        Alcotest.test_case "unused alias / constant false" `Quick
          test_unused_alias_and_constant_false;
        Alcotest.test_case "no rewrite available (NQ007)" `Quick
          test_no_rewrite_available;
        Alcotest.test_case "multiplicity-sensitive merge (NQ008)" `Quick
          test_multiplicity_sensitive_merge;
        Alcotest.test_case "classification cross-check (NQ006)" `Quick
          test_classification_cross_check;
        Alcotest.test_case "parse error (NQ100)" `Quick test_parse_error_diag;
        Alcotest.test_case "analyzer collects all (NQ101)" `Quick
          test_analyzer_collects_all;
        Alcotest.test_case "multiple statements" `Quick
          test_multiple_statements;
        Alcotest.test_case "correlation graph" `Quick test_correlation_graph;
      ] );
    ( "analysis.verifier",
      [
        Alcotest.test_case "rejects Kim NEST-JA on Q2 (NQ904)" `Quick
          test_verifier_rejects_kim_ja_count;
        Alcotest.test_case "rejects Kim NEST-JA on Q5 (NQ903)" `Quick
          test_verifier_rejects_kim_ja_neq;
        Alcotest.test_case "passes NEST-JA2 programs" `Quick
          test_verifier_passes_ja2;
        Alcotest.test_case "mutations trip the right codes" `Quick
          test_verifier_mutations;
      ] );
    ( "analysis.properties",
      [ qtest prop_lint_no_errors; qtest prop_transforms_verify ] );
  ]
