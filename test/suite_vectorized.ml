(* Tuple-vs-vectorized engine equivalence.

   The vectorized engine must be observationally identical to the tuple
   engine on every plan: same rows, same multiset, on NULL-dense and empty
   inputs and exactly at batch boundaries (sizes 1, k*max_rows ± 1).  Operator
   shapes are exercised two ways: direct physical plans through
   [Plan.run] / [Plan.run_vec] (scans, filters, projections, the hash
   operators, joins with residuals), and whole transformed programs through
   [Planner.run_program ~engine] sweeping planner mode and forced join
   method, which routes the sort/merge/NL operators through the tuple
   adapters. *)

module Value = Relalg.Value
module Row = Relalg.Row
module Schema = Relalg.Schema
module Relation = Relalg.Relation
module Catalog = Storage.Catalog
module Pager = Storage.Pager
module Plan = Exec.Plan
module Vec = Exec.Vec
module Batch = Exec.Batch
module Iterator = Exec.Iterator
module Planner = Optimizer.Planner
module A = Sql.Ast
module G = Workload.Gen
module F = Workload.Fixtures

let col ?table column = { A.table; A.column }

(* Run one plan under both engines against a fresh catalog each time (page
   and statistics state must not leak between the two executions). *)
let engines_agree ~make_catalog plan =
  let tuple = Plan.run (make_catalog ()) plan in
  let vec = Plan.run_vec (make_catalog ()) plan in
  if Relation.equal_bag tuple vec then true
  else begin
    Fmt.epr "@.engine mismatch on %s@.tuple:@.%a@.vectorized:@.%a@."
      (Plan.to_string plan) Relation.pp tuple Relation.pp vec;
    false
  end

(* ---------------- randomized plan-level properties -------------------- *)

(* NULL-dense, duplicate-heavy keyed inputs: the same generator the
   physical-operator suite uses ([Workload.Gen.keyed_relation]), small key
   ranges forcing many-to-many joins, ~20% NULL keys and payloads. *)
let random_tables rng =
  let key_range = G.int_in rng 1 5 in
  let l =
    G.keyed_relation rng ~rel:"L" ~n:(G.int_in rng 0 60) ~key_range
      ~null_pct:20
  in
  let r =
    G.keyed_relation rng ~rel:"R" ~n:(G.int_in rng 0 60) ~key_range
      ~null_pct:20
  in
  (l, r)

let trial_of_plan make_plan seed =
  let rng = Random.State.make [| seed |] in
  let l, r = random_tables rng in
  let plan = make_plan rng in
  engines_agree plan ~make_catalog:(fun () ->
      G.catalog_of [ ("L", l); ("R", r) ])

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let prop name ~count make_plan =
  QCheck2.Test.make ~name ~count seed_gen (trial_of_plan make_plan)

let lk = col ~table:"L" "K"
let lv = col ~table:"L" "V"
let rk = col ~table:"R" "K"
let rv = col ~table:"R" "V"

let any_cmp rng =
  G.pick rng [ A.Eq; A.Ne; A.Lt; A.Le; A.Gt; A.Ge; A.Eq_null ]

let prop_filter =
  prop "filter: col-lit and col-col, every operator" ~count:150 (fun rng ->
      let preds =
        [
          A.Cmp (A.Col lk, any_cmp rng, A.Lit (Value.Int (G.int_in rng 1 5)));
          A.Cmp (A.Col lk, any_cmp rng, A.Col lv);
        ]
      in
      Plan.Filter (preds, Plan.Scan "L"))

let prop_project =
  prop "project: reorder + duplicate column" ~count:80 (fun _rng ->
      Plan.Project ([ lv; lk; lv ], Plan.Scan "L"))

let prop_hash_distinct =
  prop "hash distinct = tuple distinct semantics" ~count:120 (fun rng ->
      let cols = G.pick rng [ [ lk ]; [ lk; lv ] ] in
      Plan.Hash_distinct (Plan.Project (cols, Plan.Scan "L")))

let prop_hash_join =
  prop "hash join: inner/outer, null-safe keys, residual" ~count:200
    (fun rng ->
      let kind = G.pick rng [ Plan.Inner; Plan.Left_outer ] in
      let key_cmp = G.pick rng [ A.Eq; A.Eq_null ] in
      let residual =
        if G.int_in rng 0 1 = 0 then []
        else [ A.Cmp (A.Col lv, A.Lt, A.Col rv) ]
      in
      Plan.Join
        {
          method_ = Plan.Hash;
          kind;
          cond = [ (lk, key_cmp, rk) ];
          residual;
          left = Plan.Scan "L";
          right = Plan.Scan "R";
        })

let prop_hash_group_agg =
  prop "hash group/agg: all aggregates over NULL-dense input" ~count:150
    (fun rng ->
      let aggs =
        [
          { Plan.fn = A.Count_star; out_name = "CSTAR" };
          { Plan.fn = A.Count lv; out_name = "CV" };
          { Plan.fn = A.Sum lv; out_name = "SV" };
          { Plan.fn = A.Min lv; out_name = "MNV" };
          { Plan.fn = A.Max lv; out_name = "MXV" };
          { Plan.fn = A.Avg lv; out_name = "AV" };
        ]
      in
      let group_by = G.pick rng [ [ lk ]; [] ] in
      Plan.Hash_group_agg { Plan.group_by; aggs; input = Plan.Scan "L" })

(* ---------------- randomized program-level property ------------------- *)

(* Whole transformed programs under every planner mode and forced join
   method: the non-hash cells route sorts, merge and NL joins through the
   tuple adapters inside the vectorized pipeline. *)
let run_engine catalog program ~force ~mode engine =
  let result =
    Planner.run_program ~force ~mode ~verify:true ~engine catalog program
  in
  Planner.drop_temps catalog program;
  result

let trial_program seed =
  let rng = Random.State.make [| seed |] in
  let n_parts = G.int_in rng 1 12 in
  let n_supply = G.int_in rng 0 25 in
  let key_range = G.int_in rng 1 8 in
  let catalog =
    G.parts_supply_catalog rng ~null_pct:15 ~n_parts ~n_supply ~key_range
  in
  let text =
    (G.pick rng [ G.n_query; G.a_query; G.j_query; G.ja_query ]) rng
  in
  let force =
    G.pick rng
      [ Planner.Auto; Planner.Force_nl; Planner.Force_merge;
        Planner.Force_hash ]
  in
  let mode = G.pick rng [ Planner.Paper1987; Planner.Hybrid ] in
  let q = F.parse_analyzed catalog text in
  match
    Optimizer.Nest_g.transform
      ~fresh:(fun () -> Catalog.fresh_temp_name catalog)
      q
  with
  | exception Optimizer.Nest_g.Unsupported _
  | exception Optimizer.Ja_shape.Not_ja _
  | exception Optimizer.Nest_n_j.Not_applicable _ ->
      true (* not transformable: nothing to compare *)
  | program -> (
      match run_engine catalog program ~force ~mode Plan.Tuple with
      | exception Planner.Planning_error _ -> true (* engine-independent *)
      | tuple ->
          let vec = run_engine catalog program ~force ~mode Plan.Vectorized in
          if Relation.equal_bag tuple vec then true
          else begin
            Fmt.epr "@.seed %d query %s@.tuple:@.%a@.vectorized:@.%a@." seed
              text Relation.pp tuple Relation.pp vec;
            false
          end)

let prop_programs =
  QCheck2.Test.make
    ~name:"transformed programs: tuple = vectorized (mode x force sweep)"
    ~count:150 seed_gen trial_program

(* ---------------- batch-boundary goldens ------------------------------ *)

(* Exact sizes around the batch-capacity boundary: 0, 1, and k*max_rows ± 1
   for k = 1, 2 — derived from [Batch.max_rows] so the tests keep probing
   the boundary if the vector size is retuned.  Deterministic data so
   expected cardinalities are arithmetic, not oracle output. *)
let m = Batch.max_rows
let boundary_sizes = [ 0; 1; m - 1; m; m + 1; (2 * m) - 1; 2 * m; (2 * m) + 1 ]

let boundary_relation n =
  Relation.of_values ~rel:"T"
    [ ("K", Value.Tint); ("V", Value.Tint) ]
    (List.init n (fun i ->
         [
           (if i mod 11 = 0 then Value.Null else Value.Int (i mod 7));
           Value.Int i;
         ]))

let with_boundary_catalog n f =
  f (fun () -> G.catalog_of [ ("T", boundary_relation n) ])

let tk = col ~table:"T" "K"
let tv = col ~table:"T" "V"

let test_boundary_scan_filter () =
  List.iter
    (fun n ->
      with_boundary_catalog n (fun make_catalog ->
          let plan =
            Plan.Filter
              ( [ A.Cmp (A.Col tv, A.Lt, A.Lit (Value.Int (n - 1))) ],
                Plan.Scan "T" )
          in
          let vec = Plan.run_vec (make_catalog ()) plan in
          Alcotest.(check int)
            (Printf.sprintf "filter cardinality at n=%d" n)
            (max 0 (n - 1))
            (Relation.cardinality vec);
          Alcotest.(check bool)
            (Printf.sprintf "filter agrees at n=%d" n)
            true
            (Relation.equal_bag (Plan.run (make_catalog ()) plan) vec)))
    boundary_sizes

let test_boundary_group_agg () =
  List.iter
    (fun n ->
      with_boundary_catalog n (fun make_catalog ->
          let plan =
            Plan.Hash_group_agg
              {
                Plan.group_by = [ tk ];
                aggs =
                  [
                    { Plan.fn = A.Count_star; out_name = "C" };
                    { Plan.fn = A.Sum tv; out_name = "S" };
                  ];
                input = Plan.Scan "T";
              }
          in
          let tuple = Plan.run (make_catalog ()) plan in
          let vec = Plan.run_vec (make_catalog ()) plan in
          (* distinct keys: NULL (i mod 11 = 0, when n > 0) plus i mod 7
             values present among non-multiples of 11 *)
          Alcotest.(check bool)
            (Printf.sprintf "group agg agrees at n=%d" n)
            true
            (Relation.equal_bag tuple vec)))
    boundary_sizes

let test_boundary_hash_join () =
  List.iter
    (fun n ->
      with_boundary_catalog n (fun make_catalog ->
          let plan =
            Plan.Join
              {
                method_ = Plan.Hash;
                kind = Plan.Left_outer;
                cond = [ (tk, A.Eq, tk) ];
                residual = [];
                left = Plan.Scan "T";
                right = Plan.Rename ("T2", Plan.Scan "T");
              }
          in
          (* self-join needs distinct provenance on one side *)
          let plan =
            match plan with
            | Plan.Join j ->
                Plan.Join
                  {
                    j with
                    cond = [ (tk, A.Eq, col ~table:"T2" "K") ];
                  }
            | p -> p
          in
          let tuple = Plan.run (make_catalog ()) plan in
          let vec = Plan.run_vec (make_catalog ()) plan in
          Alcotest.(check bool)
            (Printf.sprintf "outer hash self-join agrees at n=%d" n)
            true
            (Relation.equal_bag tuple vec)))
    [ 0; 1; m - 1; m; m + 1 ]

(* ---------------- adapters and batches -------------------------------- *)

let test_adapter_round_trip () =
  List.iter
    (fun n ->
      let rel = boundary_relation n in
      let rows =
        Vec.to_rows (Vec.of_tuple (Iterator.of_relation rel))
      in
      Alcotest.(check int)
        (Printf.sprintf "row count preserved at n=%d" n)
        n (List.length rows);
      Alcotest.(check bool)
        (Printf.sprintf "order preserved at n=%d" n)
        true
        (List.for_all2 (fun a b -> Row.compare a b = 0) (Relation.rows rel)
           rows))
    [ 0; 1; m; m + 1; (2 * m) + 1 ]

let test_batch_of_rows_round_trip () =
  (* mixed representations: an Ints column, a demoted (NULL-dense) column,
     and a boxed string column survive the round trip exactly *)
  let schema =
    Schema.of_columns ~rel:"M"
      [ ("A", Value.Tint); ("B", Value.Tint); ("C", Value.Tstr) ]
  in
  let rows =
    List.init 100 (fun i ->
        Row.of_list
          [
            Value.Int i;
            (if i mod 3 = 0 then Value.Null else Value.Int (-i));
            (if i mod 5 = 0 then Value.Null else Value.Str (string_of_int i));
          ])
  in
  let b = Batch.of_rows schema (Array.of_list rows) in
  Alcotest.(check int) "live rows" 100 (Batch.live b);
  Alcotest.(check bool) "round trip" true
    (List.for_all2 (fun a b -> Row.compare a b = 0) rows (Batch.to_rows b))

let test_scan_batches_match_pages () =
  (* a stored table scans into full batches: rows/call near max_rows *)
  let n = 2500 in
  let catalog = G.catalog_of [ ("T", boundary_relation n) ] in
  let v = Vec.scan (Catalog.heap catalog "T") in
  let batches = ref 0 and rows = ref 0 in
  let rec drain () =
    match v.Vec.next_batch () with
    | Some b ->
        incr batches;
        rows := !rows + Batch.live b;
        Alcotest.(check bool) "batch within bound" true
          (Batch.live b <= Batch.max_rows);
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all rows scanned" n !rows;
  Alcotest.(check bool) "batches amortize calls" true
    (!batches <= (n / Batch.max_rows) + 2)

(* ---------------- EXPLAIN ANALYZE surface ------------------------------ *)

let define_fixture db =
  Fixtures.define_fixture db "PARTS" F.kiessling_parts;
  Fixtures.define_fixture db "SUPPLY" F.kiessling_supply

let count_bug_query = Fixtures.count_bug_query

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_analyze_vectorized_metrics () =
  let db = Core.create_db () in
  define_fixture db;
  let text =
    match
      Core.explain_query ~analyze:true ~engine:Plan.Vectorized db
        count_bug_query
    with
    | Ok t -> t
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool) "reports batches" true (contains ~needle:"batches=" text);
  Alcotest.(check bool) "reports rows/call" true
    (contains ~needle:"rows/call=" text)

let test_analyze_tuple_has_no_batches () =
  let db = Core.create_db () in
  define_fixture db;
  let text =
    match Core.explain_query ~analyze:true db count_bug_query with
    | Ok t -> t
    | Error msg -> Alcotest.fail msg
  in
  (* tuple operators never produce batches; the field stays hidden *)
  Alcotest.(check bool) "no batches field" false
    (contains ~needle:"batches=" text);
  Alcotest.(check bool) "still reports rows/call" true
    (contains ~needle:"rows/call=" text)

let test_core_run_engines_agree () =
  let run engine =
    let db = Core.create_db () in
    define_fixture db;
    match Core.run ~engine db count_bug_query with
    | Ok e -> e.Core.result
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool) "count-bug query agrees across engines" true
    (Relation.equal_bag (run Plan.Tuple) (run Plan.Vectorized))

(* ---------------- registration ----------------------------------------- *)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_filter;
      prop_project;
      prop_hash_distinct;
      prop_hash_join;
      prop_hash_group_agg;
      prop_programs;
    ]

let suites =
  [
    ( "vectorized.equivalence",
      qtests
      @ [
          Alcotest.test_case "batch boundaries: scan+filter" `Quick
            test_boundary_scan_filter;
          Alcotest.test_case "batch boundaries: group/agg" `Quick
            test_boundary_group_agg;
          Alcotest.test_case "batch boundaries: outer hash self-join" `Quick
            test_boundary_hash_join;
        ] );
    ( "vectorized.batches",
      [
        Alcotest.test_case "tuple adapter round trip" `Quick
          test_adapter_round_trip;
        Alcotest.test_case "of_rows/to_rows round trip" `Quick
          test_batch_of_rows_round_trip;
        Alcotest.test_case "scan fills page-sized batches" `Quick
          test_scan_batches_match_pages;
      ] );
    ( "vectorized.surface",
      [
        Alcotest.test_case "EXPLAIN ANALYZE --engine vectorized" `Quick
          test_analyze_vectorized_metrics;
        Alcotest.test_case "EXPLAIN ANALYZE tuple hides batches" `Quick
          test_analyze_tuple_has_no_batches;
        Alcotest.test_case "Core.run engines agree" `Quick
          test_core_run_engines_agree;
      ] );
  ]
