(* Edge cases and golden snapshots: parser/analyzer robustness, exact
   printed forms of transformed programs (the paper-style output is part of
   the interface), and the remaining cost-model entry points. *)

module Value = Relalg.Value
module Relation = Relalg.Relation
module Catalog = Storage.Catalog
module F = Workload.Fixtures
open Optimizer

let parse_ok text =
  match Sql.Parser.parse text with
  | Ok q -> q
  | Error msg -> Alcotest.failf "parse error: %s" msg

(* --- parser robustness --------------------------------------------------- *)

let test_whitespace_and_case () =
  let a = parse_ok "select   sname\nFROM s\twhere STATUS > 20" in
  let b = parse_ok "SELECT sname FROM s WHERE STATUS > 20" in
  Alcotest.(check bool) "layout-insensitive" true (Sql.Ast.equal_query a b);
  (* identifiers keep their case *)
  match a.Sql.Ast.select with
  | [ Sql.Ast.Sel_col { column = "sname"; _ } ] -> ()
  | _ -> Alcotest.fail "identifier case preserved"

let test_deeply_nested_parse () =
  (* 12 levels of nesting parse and report the right depth. *)
  let rec build n =
    if n = 0 then "SELECT PNUM FROM SUPPLY"
    else
      Printf.sprintf "SELECT PNUM FROM SUPPLY WHERE PNUM IN (%s)" (build (n - 1))
  in
  let q = parse_ok (build 12) in
  Alcotest.(check int) "depth 12" 12 (Sql.Ast.nesting_depth q)

let test_parse_error_positions () =
  (match Sql.Parser.parse "SELECT A FROM T WHERE" with
  | Error msg ->
      Alcotest.(check bool) "mentions line" true
        (String.length msg > 0 &&
         (let rec has i = i + 4 <= String.length msg && (String.sub msg i 4 = "line" || has (i+1)) in has 0))
  | Ok _ -> Alcotest.fail "expected error");
  match Sql.Parser.parse "SELECT A\nFROM T\nWHERE A ==" with
  | Error msg ->
      let has needle =
        let n = String.length needle in
        let rec go i = i + n <= String.length msg && (String.sub msg i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "line 3 reported" true (has "line 3")
  | Ok _ -> Alcotest.fail "expected error"

let test_semicolon_and_comments () =
  let a = parse_ok "SELECT SNO FROM SP; -- trailing comment" in
  let b = parse_ok "-- leading\nSELECT SNO FROM SP" in
  Alcotest.(check bool) "semicolon+comments" true (Sql.Ast.equal_query a b)

let test_string_escapes_roundtrip () =
  let q = parse_ok "SELECT SNO FROM SP WHERE ORIGIN = 'O''Brien'" in
  let printed = Sql.Pp.query_to_string q in
  let q' = parse_ok printed in
  Alcotest.(check bool) "escaped quote round trip" true
    (Sql.Ast.equal_query q q')

let test_is_not_in () =
  let a = parse_ok "SELECT SNO FROM S WHERE SNO IS NOT IN (SELECT SNO FROM SP)" in
  let b = parse_ok "SELECT SNO FROM S WHERE SNO NOT IN (SELECT SNO FROM SP)" in
  Alcotest.(check bool) "IS NOT IN accepted" true (Sql.Ast.equal_query a b)

(* --- analyzer edges ------------------------------------------------------ *)

let kim = F.kim_catalog ()
let lookup = Catalog.lookup kim

let test_unqualified_outer_reference () =
  (* An unqualified column that only resolves in the outer scope. *)
  let q =
    match
      Sql.Analyzer.analyze ~lookup
        (parse_ok
           "SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE \
            ORIGIN = CITY)")
    with
    | Ok q -> q
    | Error e -> Alcotest.failf "analyze: %s" e
  in
  match q.Sql.Ast.where with
  | [ Sql.Ast.In_subq (_, sub) ] ->
      Alcotest.(check bool) "CITY bound to outer S" true
        (Sql.Ast.String_set.mem "S" (Sql.Ast.free_tables sub))
  | _ -> Alcotest.fail "shape"

let test_self_join_aliases_analyze () =
  match
    Sql.Analyzer.analyze ~lookup
      (parse_ok "SELECT X.SNO FROM SP X, SP Y WHERE X.PNO = Y.PNO AND X.QTY \
                 > Y.QTY")
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "self join: %s" e

let test_numeric_cross_type_compare () =
  (* INT vs FLOAT comparisons are allowed. *)
  match
    Sql.Analyzer.analyze ~lookup
      (parse_ok "SELECT SNO FROM SP WHERE QTY > 99.5")
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "numeric mix: %s" e

(* --- golden snapshots ----------------------------------------------------- *)

let normalize s = String.concat "\n" (String.split_on_char '\n' (String.trim s))

let test_golden_q2_program () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  let q = F.parse_analyzed catalog F.query_q2 in
  let n = ref 0 in
  let fresh () = incr n; Printf.sprintf "TEMP%d" !n in
  let program = Nest_g.transform ~fresh q in
  let expected =
    "TEMP1 (PNUM) :=\n\
    \  SELECT DISTINCT PARTS.PNUM FROM PARTS;\n\n\
     TEMP2 (PNUM, SHIPDATE) :=\n\
    \  SELECT SUPPLY.PNUM, SUPPLY.SHIPDATE\n\
    \  FROM SUPPLY\n\
    \  WHERE SUPPLY.SHIPDATE < '1980-01-01';\n\n\
     TEMP3 (PNUM, COUNT_SHIPDATE) :=\n\
    \  SELECT TEMP1.PNUM, COUNT(TEMP2.SHIPDATE)\n\
    \  FROM TEMP1, TEMP2\n\
    \  WHERE TEMP1.PNUM =+ TEMP2.PNUM\n\
    \  GROUP BY TEMP1.PNUM;\n\n\
     SELECT PARTS.PNUM\n\
     FROM PARTS, TEMP3\n\
     WHERE PARTS.QOH = TEMP3.COUNT_SHIPDATE\n\
     AND PARTS.PNUM <=> TEMP3.PNUM;"
  in
  Alcotest.(check string) "paper-style program"
    (normalize expected)
    (normalize (Program.to_string program))

let test_golden_relation_pp () =
  let rel =
    Relation.of_values ~rel:"T"
      [ ("A", Value.Tint); ("B", Value.Tstr) ]
      Value.[ [ Int 1; Str "x" ]; [ Null; Str "long-ish" ] ]
  in
  let expected =
    "T.A   T.B       \n\
     ----  ----------\n\
     1     'x'       \n\
     NULL  'long-ish'\n\
     (2 rows)"
  in
  Alcotest.(check string) "table rendering" expected (Fmt.str "%a" Relation.pp rel)

let test_golden_explain_shape () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  let q = F.parse_analyzed catalog F.query_q2 in
  let program =
    Nest_g.transform ~fresh:(fun () -> Catalog.fresh_temp_name catalog) q
  in
  let text = Planner.explain catalog program in
  let has needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length text && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "distinct for TEMP1" true (has "Distinct");
  Alcotest.(check bool) "left-outer join for COUNT" true (has "left-outer");
  Alcotest.(check bool) "group agg" true (has "GroupAgg");
  Alcotest.(check bool) "filter pushed below" true (has "Filter")

(* --- NULL / padding edge-case goldens ------------------------------------- *)

let date y m dd = Value.Date { year = y; month = m; day = dd }

(* A Kiessling-style catalog with NULL join columns on both sides. *)
let null_bearing_catalog () =
  Workload.Gen.catalog_of ~buffer_pages:8 ~page_bytes:128
    [
      ( "PARTS",
        Relation.of_values ~rel:"PARTS"
          [ ("PNUM", Value.Tint); ("QOH", Value.Tint) ]
          Value.[ [ Int 3; Int 1 ]; [ Null; Int 0 ]; [ Int 10; Int 1 ] ] );
      ( "SUPPLY",
        Relation.of_values ~rel:"SUPPLY"
          [ ("PNUM", Value.Tint); ("QUAN", Value.Tint);
            ("SHIPDATE", Value.Tdate) ]
          Value.
            [
              [ Int 3; Int 4; date 1979 6 1 ];
              [ Null; Int 9; date 1979 1 1 ];
            ] );
    ]

let run_both catalog text =
  let q = F.parse_analyzed catalog text in
  let nested = Exec.Nested_iter.run catalog q in
  let program =
    Nest_g.transform ~fresh:(fun () -> Catalog.fresh_temp_name catalog) q
  in
  let transformed = Planner.run_program ~verify:true catalog program in
  Planner.drop_temps catalog program;
  (nested, transformed, program)

(* The Kiessling count bug, NULL variant: the part with a NULL join column
   matches no supply, so COUNT = 0 = QOH and the row qualifies.  The
   transformed program only keeps it because the final join-back uses the
   null-safe <=> (a strict = would drop the NULL group row). *)
let test_count_bug_with_nulls () =
  let catalog = null_bearing_catalog () in
  let nested, transformed, program =
    run_both catalog
      "SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(SHIPDATE) FROM \
       SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)"
  in
  let expected = Value.[ Null; Int 3 ] in
  Alcotest.(check bool) "nested keeps the NULL part" true
    (List.sort Value.compare (Relation.column_values nested "PNUM") = expected);
  Alcotest.(check bool) "transformed agrees exactly" true
    (Relation.equal_bag nested transformed);
  let text = Program.to_string program in
  let has needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length text && (String.sub text i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "join-back is null-safe" true (has "<=>")

(* SUM / AVG over a padding-only group stay NULL (only COUNT becomes 0),
   so QOH = NULL is Unknown and the supply-less part is rejected. *)
let test_sum_avg_padded_group () =
  let catalog =
    Workload.Gen.catalog_of ~buffer_pages:8 ~page_bytes:128
      [
        ( "PARTS",
          Relation.of_values ~rel:"PARTS"
            [ ("PNUM", Value.Tint); ("QOH", Value.Tint) ]
            Value.[ [ Int 1; Int 3 ]; [ Int 2; Int 0 ] ] );
        ( "SUPPLY",
          Relation.of_values ~rel:"SUPPLY"
            [ ("PNUM", Value.Tint); ("QUAN", Value.Tint);
              ("SHIPDATE", Value.Tdate) ]
            Value.
              [
                [ Int 1; Int 1; date 1979 6 1 ];
                [ Int 1; Int 2; date 1981 3 1 ];
              ] );
      ]
  in
  let nested, transformed, _ =
    run_both catalog
      "SELECT PNUM FROM PARTS WHERE QOH = (SELECT SUM(QUAN) FROM SUPPLY \
       WHERE SUPPLY.PNUM = PARTS.PNUM)"
  in
  Alcotest.(check bool) "SUM: only part 1 (3 = 1+2) qualifies" true
    (Relation.column_values nested "PNUM" = Value.[ Int 1 ]);
  Alcotest.(check bool) "SUM: transformed agrees (part 2 not resurrected)"
    true
    (Relation.equal_bag nested transformed);
  let nested, transformed, _ =
    run_both catalog
      "SELECT PNUM FROM PARTS WHERE QOH = (SELECT AVG(QUAN) FROM SUPPLY \
       WHERE SUPPLY.PNUM = PARTS.PNUM)"
  in
  (* part 1: AVG = 1.5 <> 3; part 2: AVG over padding = NULL -> Unknown *)
  Alcotest.(check int) "AVG: empty either way" 0 (Relation.cardinality nested);
  Alcotest.(check bool) "AVG: transformed agrees" true
    (Relation.equal_bag nested transformed)

(* §5.3 duplicates with NULL duplicates: IN keeps each qualifying outer
   occurrence; NULL correlation values never match.  The join-based merge
   may change multiplicity (the documented §5.4 residue) but must agree as
   a set and must not resurrect the NULL-key rows. *)
let test_duplicates_with_null_dups () =
  let catalog =
    Workload.Gen.catalog_of ~buffer_pages:8 ~page_bytes:128
      [
        ( "PARTS",
          Relation.of_values ~rel:"PARTS"
            [ ("PNUM", Value.Tint); ("QOH", Value.Tint) ]
            Value.
              [
                [ Int 1; Int 5 ]; [ Int 1; Int 5 ]; [ Null; Int 5 ];
                [ Null; Int 5 ]; [ Int 2; Int 7 ];
              ] );
        ( "SUPPLY",
          Relation.of_values ~rel:"SUPPLY"
            [ ("PNUM", Value.Tint); ("QUAN", Value.Tint);
              ("SHIPDATE", Value.Tdate) ]
            Value.
              [
                [ Int 1; Int 5; date 1979 6 1 ];
                [ Int 1; Int 5; date 1980 2 1 ];
                [ Null; Int 5; date 1979 1 1 ];
              ] );
      ]
  in
  let nested, transformed, _ =
    run_both catalog
      "SELECT QOH FROM PARTS WHERE QOH IN (SELECT QUAN FROM SUPPLY WHERE \
       SUPPLY.PNUM = PARTS.PNUM)"
  in
  Alcotest.(check bool) "nested: one 5 per qualifying occurrence" true
    (Relation.column_values nested "QOH" = Value.[ Int 5; Int 5 ]);
  Alcotest.(check bool) "transformed agrees as a set" true
    (Relation.equal_set nested transformed);
  Alcotest.(check bool) "NULL-key rows stay out" true
    (List.for_all
       (fun v -> Value.compare v (Value.Int 5) = 0)
       (Relation.column_values transformed "QOH"))

(* --- ORDER BY ------------------------------------------------------------- *)

let test_order_by_basic () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  let run text =
    Exec.Nested_iter.run catalog (F.parse_analyzed catalog text)
  in
  let rel = run "SELECT PNUM FROM SUPPLY ORDER BY PNUM" in
  let got = Relation.column_values rel "PNUM" in
  Alcotest.(check bool) "ascending" true
    (got = Value.[ Int 3; Int 3; Int 8; Int 10; Int 10 ]);
  let rel = run "SELECT PNUM, QUAN FROM SUPPLY ORDER BY PNUM DESC, QUAN" in
  Alcotest.(check bool) "desc primary, asc secondary" true
    (Relation.column_values rel "PNUM"
     = Value.[ Int 10; Int 10; Int 8; Int 3; Int 3 ])

let test_order_by_transformed_path () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  let text = F.query_q2 ^ " ORDER BY PNUM DESC" in
  let q = F.parse_analyzed catalog text in
  let program =
    Nest_g.transform ~fresh:(fun () -> Catalog.fresh_temp_name catalog) q
  in
  let result = Planner.run_program ~verify:true catalog program in
  Alcotest.(check bool) "ordered transformed result" true
    (Relation.column_values result "PNUM" = Value.[ Int 10; Int 8 ])

let test_order_by_validation () =
  let catalog = F.parts_supply_catalog F.Count_bug in
  let analyze text =
    match Sql.Parser.parse text with
    | Error e -> Error e
    | Ok q -> Sql.Analyzer.analyze ~lookup:(Catalog.lookup catalog) q
  in
  Alcotest.(check bool) "unknown output column rejected" true
    (Result.is_error (analyze "SELECT PNUM FROM PARTS ORDER BY QOH"));
  Alcotest.(check bool) "qualified name rejected" true
    (Result.is_error (analyze "SELECT PNUM FROM PARTS ORDER BY PARTS.PNUM"));
  Alcotest.(check bool) "order by in subquery rejected" true
    (Result.is_error
       (analyze
          "SELECT PNUM FROM PARTS WHERE PNUM IN (SELECT PNUM FROM SUPPLY            ORDER BY PNUM)"));
  Alcotest.(check bool) "valid order by accepted" true
    (Result.is_ok (analyze "SELECT PNUM FROM PARTS ORDER BY PNUM DESC"))

let test_order_by_roundtrip () =
  let a = parse_ok "SELECT PNUM, QUAN FROM SUPPLY ORDER BY QUAN DESC, PNUM" in
  let b = parse_ok (Sql.Pp.query_to_string a) in
  Alcotest.(check bool) "pp round trip" true (Sql.Ast.equal_query a b)

(* --- remaining cost-model entry points ----------------------------------- *)

let test_cost_type_a_and_type_n () =
  Alcotest.(check int) "type-A cost" 130
    (int_of_float (Cost.type_a ~pi:50. ~pj:80.));
  (* Type-N with a spilled X list: Pi + Pj + f.Ni * Px. *)
  Alcotest.(check int) "type-N with X list" (20 + 100 + (50 * 4))
    (int_of_float
       (Cost.nested_iteration_type_n ~pi:20. ~pj:100. ~fi_ni:50. ~px:4.));
  (* §7 components stay consistent: the all-merge strategy total equals the
     closed form for an arbitrary parameter set. *)
  let p =
    { Cost.pi = 80.; pj = 45.; pt2 = 9.; pt3 = 12.; pt4 = 11.; pt = 6.;
      b = 10; fi_ni = 200.; nt2 = 120. }
  in
  let all_merge =
    List.find
      (fun s -> s.Cost.temp_method = "merge" && s.Cost.final_method = "merge")
      (Cost.ja2_strategies p)
  in
  Alcotest.(check bool) "strategy = closed form" true
    (Float.abs (all_merge.Cost.cost -. Cost.ja2_total_merge p) < 1e-6)

let test_cost_nl_fits_vs_thrash () =
  let fits = { Cost.pi = 10.; pj = 10.; pt2 = 2.; pt3 = 3.; pt4 = 3.; pt = 2.;
               b = 6; fi_ni = 10.; nt2 = 20. } in
  Alcotest.(check bool) "small Rt3 uses the cheap NL formula" true
    (Cost.ja2_temp_nl_fits fits < Cost.ja2_temp_nl_thrash fits)

let suites =
  [
    ( "sql.edge_cases",
      [
        Alcotest.test_case "whitespace/case" `Quick test_whitespace_and_case;
        Alcotest.test_case "deep nesting" `Quick test_deeply_nested_parse;
        Alcotest.test_case "error positions" `Quick test_parse_error_positions;
        Alcotest.test_case "semicolons/comments" `Quick
          test_semicolon_and_comments;
        Alcotest.test_case "string escapes" `Quick test_string_escapes_roundtrip;
        Alcotest.test_case "IS NOT IN" `Quick test_is_not_in;
        Alcotest.test_case "unqualified outer ref" `Quick
          test_unqualified_outer_reference;
        Alcotest.test_case "self join aliases" `Quick
          test_self_join_aliases_analyze;
        Alcotest.test_case "numeric cross-type" `Quick
          test_numeric_cross_type_compare;
      ] );
    ( "golden",
      [
        Alcotest.test_case "Q2 transformed program" `Quick
          test_golden_q2_program;
        Alcotest.test_case "relation rendering" `Quick test_golden_relation_pp;
        Alcotest.test_case "explain shape" `Quick test_golden_explain_shape;
        Alcotest.test_case "count bug with NULLs" `Quick
          test_count_bug_with_nulls;
        Alcotest.test_case "SUM/AVG over padding-only group" `Quick
          test_sum_avg_padded_group;
        Alcotest.test_case "duplicates with NULL duplicates" `Quick
          test_duplicates_with_null_dups;
      ] );
    ( "sql.order_by",
      [
        Alcotest.test_case "basic" `Quick test_order_by_basic;
        Alcotest.test_case "transformed path" `Quick
          test_order_by_transformed_path;
        Alcotest.test_case "validation" `Quick test_order_by_validation;
        Alcotest.test_case "round trip" `Quick test_order_by_roundtrip;
      ] );
    ( "optimizer.cost_extra",
      [
        Alcotest.test_case "type-A / type-N formulas" `Quick
          test_cost_type_a_and_type_n;
        Alcotest.test_case "NL fits vs thrash" `Quick test_cost_nl_fits_vs_thrash;
      ] );
  ]
